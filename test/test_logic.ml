open Mcx_logic

(* ------------------------------------------------------------------ *)
(* Literal                                                            *)
(* ------------------------------------------------------------------ *)

let test_literal_chars () =
  List.iter
    (fun (c, l) ->
      Alcotest.(check char) "roundtrip" c (Literal.to_char (Literal.of_char c));
      Alcotest.(check bool) "of_char" true (Literal.equal l (Literal.of_char c)))
    [ ('0', Literal.Neg); ('1', Literal.Pos); ('-', Literal.Absent) ];
  Alcotest.(check bool) "'2' is dash" true
    (Literal.equal Literal.Absent (Literal.of_char '2'));
  Alcotest.(check bool) "bad char raises" true
    (try
       ignore (Literal.of_char 'x');
       false
     with Invalid_argument _ -> true)

let test_literal_algebra () =
  let open Literal in
  Alcotest.(check bool) "pos/neg clash" true (intersect Pos Neg = None);
  Alcotest.(check bool) "dash identity" true (intersect Absent Pos = Some Pos);
  Alcotest.(check bool) "dash covers" true (covers Absent Pos && covers Absent Neg);
  Alcotest.(check bool) "pos covers pos" true (covers Pos Pos);
  Alcotest.(check bool) "pos !covers dash" false (covers Pos Absent);
  Alcotest.(check bool) "complement" true (equal (complement Pos) Neg);
  Alcotest.(check bool) "matches" true (matches Pos true && matches Neg false && matches Absent true)

(* ------------------------------------------------------------------ *)
(* Cube                                                               *)
(* ------------------------------------------------------------------ *)

let cube = Cube.of_string

let test_cube_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) "roundtrip" s (Cube.to_string (cube s)))
    [ "1-0"; "----"; "1111"; "0" ]

let test_cube_eval () =
  let c = cube "1-0" in
  Alcotest.(check bool) "101 -> x0 & !x2" false (Cube.eval c [| true; false; true |]);
  Alcotest.(check bool) "100" true (Cube.eval c [| true; false; false |]);
  Alcotest.(check bool) "110" true (Cube.eval c [| true; true; false |]);
  Alcotest.(check bool) "000" false (Cube.eval c [| false; false; false |])

let test_cube_covers () =
  Alcotest.(check bool) "1-- covers 1-0" true (Cube.covers (cube "1--") (cube "1-0"));
  Alcotest.(check bool) "1-0 !covers 1--" false (Cube.covers (cube "1-0") (cube "1--"));
  Alcotest.(check bool) "self covers" true (Cube.covers (cube "1-0") (cube "1-0"));
  Alcotest.(check bool) "disjoint" false (Cube.covers (cube "1--") (cube "0--"))

let test_cube_intersect () =
  (match Cube.intersect (cube "1--") (cube "-0-") with
  | Some c -> Alcotest.(check string) "meet" "10-" (Cube.to_string c)
  | None -> Alcotest.fail "expected intersection");
  Alcotest.(check bool) "clash empty" true (Option.is_none (Cube.intersect (cube "1--") (cube "0--")))

let test_cube_distance_supercube () =
  Alcotest.(check int) "distance 3" 3 (Cube.distance (cube "110") (cube "001"));
  Alcotest.(check int) "distance 1" 1 (Cube.distance (cube "11-") (cube "10-"));
  Alcotest.(check int) "distance 0" 0 (Cube.distance (cube "1--") (cube "-1-"));
  Alcotest.(check string) "supercube" "1--" (Cube.to_string (Cube.supercube (cube "110") (cube "101")))

let test_cube_cofactor () =
  (match Cube.cofactor (cube "1-0") ~var:0 ~value:true with
  | Some c -> Alcotest.(check string) "freed" "--0" (Cube.to_string c)
  | None -> Alcotest.fail "non-empty cofactor expected");
  Alcotest.(check bool) "conflicting cofactor empty" true
    (Option.is_none (Cube.cofactor (cube "1-0") ~var:0 ~value:false));
  (match Cube.cofactor (cube "1-0") ~var:1 ~value:false with
  | Some c -> Alcotest.(check string) "absent var unchanged" "1-0" (Cube.to_string c)
  | None -> Alcotest.fail "non-empty cofactor expected")

let test_cube_merge_adjacent () =
  (match Cube.merge_adjacent (cube "110") (cube "100") with
  | Some c -> Alcotest.(check string) "QM merge" "1-0" (Cube.to_string c)
  | None -> Alcotest.fail "expected merge");
  Alcotest.(check bool) "distance-2 no merge" true
    (Option.is_none (Cube.merge_adjacent (cube "110") (cube "001")));
  Alcotest.(check bool) "dash mismatch no merge" true
    (Option.is_none (Cube.merge_adjacent (cube "1-0") (cube "110")))

let test_cube_sharp () =
  (* --- # 1-- = 0-- ; disjointness and exactness *)
  let pieces = Cube.sharp (cube "---") (cube "1--") in
  Alcotest.(check (list string)) "single piece" [ "0--" ] (List.map Cube.to_string pieces);
  (* a inside b -> empty *)
  Alcotest.(check (list string)) "covered -> empty" []
    (List.map Cube.to_string (Cube.sharp (cube "11-") (cube "1--")));
  (* disjoint -> [a] *)
  Alcotest.(check (list string)) "disjoint -> a" [ "0--" ]
    (List.map Cube.to_string (Cube.sharp (cube "0--") (cube "1--")));
  (* multi-variable: --- # 11- = {0--, 10-} (disjoint) *)
  let pieces = Cube.sharp (cube "---") (cube "11-") in
  Alcotest.(check (list string)) "two disjoint pieces" [ "0--"; "10-" ]
    (List.map Cube.to_string pieces)

let test_cube_minterms () =
  let ms = Cube.minterms (cube "1-") in
  Alcotest.(check int) "two minterms" 2 (List.length ms);
  List.iter (fun m -> Alcotest.(check bool) "x0 fixed" true m.(0)) ms

let test_cube_literals () =
  Alcotest.(check int) "num_literals" 2 (Cube.num_literals (cube "1-0"));
  Alcotest.(check bool) "is_minterm" true (Cube.is_minterm (cube "101"));
  Alcotest.(check bool) "not minterm" false (Cube.is_minterm (cube "1-1"));
  Alcotest.(check int) "literals list" 2 (List.length (Cube.literals (cube "1-0")))

(* ------------------------------------------------------------------ *)
(* Cover                                                              *)
(* ------------------------------------------------------------------ *)

let cover rows = Cover.of_strings rows

(* The paper's running example: f = x1 + x2 + x3 + x4 + x5 x6 x7 x8. *)
let paper_example =
  cover [ "1-------"; "-1------"; "--1-----"; "---1----"; "----1111" ]

let test_cover_eval () =
  let f = cover [ "11-"; "--1" ] in
  Alcotest.(check bool) "110" true (Cover.eval f [| true; true; false |]);
  Alcotest.(check bool) "001" true (Cover.eval f [| false; false; true |]);
  Alcotest.(check bool) "100" false (Cover.eval f [| true; false; false |])

let test_cover_counts () =
  Alcotest.(check int) "size" 5 (Cover.size paper_example);
  Alcotest.(check int) "literal count" 8 (Cover.literal_count paper_example)

let test_cover_scc () =
  let f = cover [ "1--"; "11-"; "1--"; "011" ] in
  let g = Cover.single_cube_containment f in
  Alcotest.(check int) "kept 2" 2 (Cover.size g);
  Alcotest.(check bool) "semantics preserved" true (Cover.equal_semantics f g)

let test_cover_cofactor () =
  let f = cover [ "11-"; "0-1" ] in
  let fx = Cover.cofactor f ~var:0 ~value:true in
  Alcotest.(check int) "one cube survives, one freed" 1 (Cover.size fx);
  Alcotest.(check string) "cofactor cube" "-1-" (List.hd (Cover.to_strings fx))

let test_cover_sharp () =
  let f = cover [ "---" ] and g = cover [ "11-"; "0-1" ] in
  let d = Cover.sharp f g in
  (* d = f and not g, checked pointwise *)
  for idx = 0 to 7 do
    let v = Array.init 3 (fun i -> (idx lsr i) land 1 = 1) in
    Alcotest.(check bool) "difference semantics"
      (Cover.eval f v && not (Cover.eval g v))
      (Cover.eval d v)
  done

let test_cover_misc () =
  Alcotest.(check bool) "top is tautology" true (Tautology.check (Cover.top 3));
  Alcotest.(check bool) "empty is empty" true (Cover.is_empty (Cover.empty 3));
  let f = Cover.add_cube (Cover.empty 2) (cube "1-") in
  Alcotest.(check int) "add_cube" 1 (Cover.size f);
  Alcotest.(check bool) "arity mismatch rejected" true
    (try
       ignore (Cover.add_cube f (cube "1--"));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check string) "pp" "1-" (Fmt.str "%a" Cover.pp f);
  Alcotest.(check string) "pp empty" "<empty/2>" (Fmt.str "%a" Cover.pp (Cover.empty 2))

let test_cover_binate () =
  let f = cover [ "1--"; "0--"; "-1-" ] in
  Alcotest.(check (option int)) "most binate is x0" (Some 0) (Cover.most_binate_var f)

(* ------------------------------------------------------------------ *)
(* Tautology                                                          *)
(* ------------------------------------------------------------------ *)

let test_tautology_basic () =
  Alcotest.(check bool) "x + x' = 1" true (Tautology.check (cover [ "1-"; "0-" ]));
  Alcotest.(check bool) "x + x y' not taut" false (Tautology.check (cover [ "1-"; "10" ]));
  Alcotest.(check bool) "universe" true (Tautology.check (cover [ "--" ]));
  Alcotest.(check bool) "empty not taut" false (Tautology.check (Cover.empty 2));
  Alcotest.(check bool) "full minterm cover" true
    (Tautology.check (cover [ "00"; "01"; "10"; "11" ]))

let test_tautology_binate_recursion () =
  (* x y + x y' + x' z + x' z' = 1 *)
  Alcotest.(check bool) "taut via branching" true
    (Tautology.check (cover [ "11-"; "10-"; "0-1"; "0-0" ]));
  Alcotest.(check bool) "missing corner" false
    (Tautology.check (cover [ "11-"; "10-"; "0-1" ]))

let test_cube_covered () =
  Alcotest.(check bool) "11 covered by x" true
    (Tautology.cube_covered (cube "11") (cover [ "1-" ]));
  Alcotest.(check bool) "1- not covered by 11" false
    (Tautology.cube_covered (cube "1-") (cover [ "11" ]));
  Alcotest.(check bool) "split coverage" true
    (Tautology.cube_covered (cube "1-") (cover [ "11"; "10" ]))

let test_cover_equal () =
  let a = cover [ "1-"; "-1" ] and b = cover [ "1-"; "01" ] in
  Alcotest.(check bool) "x + y = x + x'y" true (Tautology.equal a b)

(* ------------------------------------------------------------------ *)
(* Complement                                                         *)
(* ------------------------------------------------------------------ *)

let test_complement_example () =
  let f = cover [ "1-" ] in
  let fc = Complement.complement f in
  Alcotest.(check bool) "f' = x'" true (Tautology.equal fc (cover [ "0-" ]))

let test_complement_empty_top () =
  let n = 3 in
  Alcotest.(check bool) "empty' = top" true
    (Tautology.check (Complement.complement (Cover.empty n)));
  Alcotest.(check bool) "top' = empty" true
    (Cover.is_empty (Complement.complement (Cover.top n)))

let test_complement_paper_example () =
  let fc = Complement.complement paper_example in
  (* f' = x1' x2' x3' x4' (x5 x6 x7 x8)' — 4 products after expansion. *)
  Alcotest.(check bool) "disjoint" true
    (not
       (List.exists
          (fun c -> Tautology.cube_covered c paper_example)
          (Cover.cubes fc)));
  let union = Cover.union paper_example fc in
  Alcotest.(check bool) "f + f' = 1" true (Tautology.check union)

(* ------------------------------------------------------------------ *)
(* Minimize                                                           *)
(* ------------------------------------------------------------------ *)

let test_expand_merges_minterms () =
  let f = cover [ "110"; "111"; "100"; "101" ] in
  let g = Minimize.espresso f in
  Alcotest.(check int) "collapses to x0" 1 (Cover.size g);
  Alcotest.(check string) "single cube 1--" "1--" (List.hd (Cover.to_strings g))

let test_irredundant () =
  (* middle cube x y' + consensus covered by neighbours *)
  let f = cover [ "1-"; "0-"; "11" ] in
  let g = Minimize.irredundant f in
  Alcotest.(check int) "redundant removed" 2 (Cover.size g);
  Alcotest.(check bool) "still tautology" true (Tautology.check g)

let test_espresso_preserves_semantics () =
  let f =
    cover [ "1100"; "1101"; "111-"; "0-11"; "0010"; "1011"; "0000" ]
  in
  let g = Minimize.espresso f in
  Alcotest.(check bool) "semantics equal" true (Cover.equal_semantics f g);
  Alcotest.(check bool) "not larger" true (Cover.size g <= Cover.size f)

let test_espresso_dc () =
  (* ON = {110}, DC = {111, 10-}: with don't-cares the whole thing expands
     to the single cube 1--. *)
  let on = cover [ "110" ] in
  let dc = cover [ "111"; "10-" ] in
  let g = Minimize.espresso_dc ~dc on in
  Alcotest.(check int) "one cube" 1 (Cover.size g);
  Alcotest.(check string) "expanded to x1" "1--" (List.hd (Cover.to_strings g));
  (* without DC, no such expansion is legal *)
  let h = Minimize.espresso on in
  Alcotest.(check int) "still 3 literals" 3 (Cover.literal_count h)

let test_espresso_dc_respects_offset () =
  let on = cover [ "11-" ] and dc = cover [ "10-" ] in
  let g = Minimize.espresso_dc ~dc on in
  (* every ON point covered *)
  Alcotest.(check bool) "covers ON" true
    (List.for_all (fun c -> Tautology.cube_covered c (Cover.union g dc))
       (Cover.cubes on));
  Alcotest.(check bool) "ON still covered by result" true
    (List.for_all (fun c -> Tautology.cube_covered c g) (Cover.cubes on) ||
     Tautology.cover_covered on g);
  (* no OFF point covered: result within ON u DC *)
  Alcotest.(check bool) "inside ON u DC" true
    (Tautology.cover_covered g (Cover.union on dc))

(* ------------------------------------------------------------------ *)
(* Truthtable                                                         *)
(* ------------------------------------------------------------------ *)

let test_tt_roundtrip () =
  let f = cover [ "1-0"; "011" ] in
  let tt = Truthtable.of_cover f in
  let back = Truthtable.to_cover tt in
  Alcotest.(check bool) "cover->tt->cover" true (Cover.equal_semantics f back)

let test_tt_indexing () =
  let v = [| true; false; true |] in
  let idx = Truthtable.index_of_assignment v in
  Alcotest.(check int) "bit0 + bit2" 5 idx;
  Alcotest.(check (array bool)) "inverse" v (Truthtable.assignment_of_index ~arity:3 idx)

let test_tt_complement () =
  let tt = Truthtable.create ~arity:4 (fun v -> v.(0)) in
  let cc = Truthtable.complement tt in
  Alcotest.(check int) "on count flips" 8 (Truthtable.on_count cc);
  Alcotest.(check bool) "double complement" true (Truthtable.equal tt (Truthtable.complement cc))

(* ------------------------------------------------------------------ *)
(* QM                                                                 *)
(* ------------------------------------------------------------------ *)

let test_qm_classic () =
  (* Classic example: f(x3..x0) on minterms 4,8,10,11,12,15 *)
  let on = [ 4; 8; 10; 11; 12; 15 ] in
  let tt = Truthtable.of_fun_int ~arity:4 (fun i -> List.mem i on) in
  let g = Qm.minimize tt in
  Alcotest.(check bool) "covers exactly" true (Truthtable.equal tt (Truthtable.of_cover g));
  Alcotest.(check bool) "<= 4 products (known minimum 3..4)" true (Cover.size g <= 4)

let test_qm_xor () =
  let tt = Truthtable.create ~arity:3 (fun v -> v.(0) <> v.(1) <> v.(2)) in
  let g = Qm.minimize tt in
  Alcotest.(check int) "xor3 needs 4 minterms" 4 (Cover.size g);
  Alcotest.(check bool) "exact" true (Truthtable.equal tt (Truthtable.of_cover g))

let test_qm_constant () =
  let ttrue = Truthtable.create ~arity:3 (fun _ -> true) in
  let g = Qm.minimize ttrue in
  Alcotest.(check int) "tautology is one cube" 1 (Cover.size g);
  Alcotest.(check int) "universe cube" 0 (Cover.literal_count g);
  let tfalse = Truthtable.create ~arity:3 (fun _ -> false) in
  Alcotest.(check int) "empty" 0 (Cover.size (Qm.minimize tfalse))

(* ------------------------------------------------------------------ *)
(* Mo_cover                                                           *)
(* ------------------------------------------------------------------ *)

let fig7_function () =
  (* O1 = x1 x2 + x2 x3, O2 = x1 x3 + x2 x3 (Fig. 7/8 of the paper). *)
  let o1 = cover [ "11-"; "-11" ] in
  let o2 = cover [ "1-1"; "-11" ] in
  Mo_cover.of_covers [ o1; o2 ]

let test_mo_sharing () =
  let mo = fig7_function () in
  Alcotest.(check int) "shared rows: m1 m2=m4 m3" 3 (Mo_cover.product_count mo);
  Alcotest.(check int) "outputs" 2 (Mo_cover.n_outputs mo);
  Alcotest.(check int) "literals" 6 (Mo_cover.literal_count mo);
  Alcotest.(check int) "connections" 4 (Mo_cover.connection_count mo)

let test_mo_paper_counts () =
  (* The paper's Fig. 8 FM keeps m2 (x2 x3 of O1) and m4 (x2 x3 of O2)
     as separate rows: product sharing disabled. *)
  let o1 = cover [ "11-"; "-11" ] and o2 = cover [ "1-1"; "-11" ] in
  let rows =
    List.map (fun c -> { Mo_cover.cube = c; outputs = [| true; false |] }) (Cover.cubes o1)
    @ List.map (fun c -> { Mo_cover.cube = c; outputs = [| false; true |] }) (Cover.cubes o2)
  in
  ignore rows;
  (* sharing merges x2 x3: 3 rows, as asserted above. The unshared FM of the
     figure is built by the mapping layer with ~share:false. *)
  Alcotest.(check int) "of_covers shares" 3 (Mo_cover.product_count (fig7_function ()))

let test_mo_eval () =
  let mo = fig7_function () in
  let out = Mo_cover.eval mo [| true; true; false |] in
  Alcotest.(check (array bool)) "110 -> O1 only" [| true; false |] out;
  let out = Mo_cover.eval mo [| true; false; true |] in
  Alcotest.(check (array bool)) "101 -> O2 only" [| false; true |] out;
  let out = Mo_cover.eval mo [| false; true; true |] in
  Alcotest.(check (array bool)) "011 -> both" [| true; true |] out

let test_mo_complement () =
  let mo = fig7_function () in
  let neg = Mo_cover.complement mo in
  Alcotest.(check int) "same outputs" 2 (Mo_cover.n_outputs neg);
  for k = 0 to 1 do
    let f = Mo_cover.output_cover mo k and g = Mo_cover.output_cover neg k in
    Alcotest.(check bool) "complement disjoint" true
      (not (Tautology.check f) || Cover.is_empty g);
    Alcotest.(check bool) "union is tautology" true (Tautology.check (Cover.union f g))
  done

let test_mo_minimize () =
  let o1 = cover [ "110"; "111"; "10-" ] in
  let mo = Mo_cover.of_covers [ o1 ] in
  let minimized = Mo_cover.minimize mo in
  Alcotest.(check int) "minimized to x0" 1 (Mo_cover.product_count minimized);
  Alcotest.(check bool) "same function" true (Mo_cover.equal_semantics mo minimized)

(* ------------------------------------------------------------------ *)
(* Mo_minimize                                                        *)
(* ------------------------------------------------------------------ *)

let test_joint_shares_products () =
  (* O1 = x1 (as two unmerged halves), O2 = x1 x2: joint minimization must
     collapse O1's halves and share nothing incorrectly. *)
  let o1 = cover [ "11-"; "10-" ] and o2 = cover [ "11-" ] in
  let mo = Mo_cover.of_covers [ o1; o2 ] in
  let m = Mo_minimize.minimize_joint mo in
  Alcotest.(check bool) "semantics" true (Bdd.mo_cover_equal mo m);
  Alcotest.(check bool) "fewer or equal rows" true
    (Mo_cover.product_count m <= Mo_cover.product_count mo)

let test_joint_output_expansion () =
  (* O2's cube x1 x2 lies inside O1 = x1; expansion must extend its mask,
     making O1's own copy of the region redundant where possible. *)
  let o1 = cover [ "1--" ] and o2 = cover [ "11-" ] in
  let mo = Mo_cover.of_covers [ o1; o2 ] in
  let m = Mo_minimize.minimize_joint mo in
  Alcotest.(check bool) "semantics" true (Bdd.mo_cover_equal mo m);
  (* the shared row must now belong to both outputs or be dropped *)
  Alcotest.(check bool) "no extra rows" true (Mo_cover.product_count m <= 2)

let test_joint_obligations_helper () =
  let o1 = cover [ "1--"; "11-" ] in
  let mo = Mo_cover.of_covers [ o1 ] in
  Alcotest.(check bool) "11- covered by 1-- alone" true
    (Mo_minimize.row_obligations_covered mo ~cube:(cube "11-") ~output:0
       ~without:[ cube "11-" ]);
  Alcotest.(check bool) "1-- not covered by 11- alone" false
    (Mo_minimize.row_obligations_covered mo ~cube:(cube "1--") ~output:0
       ~without:[ cube "1--" ])

(* ------------------------------------------------------------------ *)
(* Pla                                                                *)
(* ------------------------------------------------------------------ *)

let test_pla_file_roundtrip () =
  let mo = fig7_function () in
  let path = Filename.temp_file "mcx_test" ".pla" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pla.write_file path ~input_labels:[ "a"; "b"; "c" ] mo;
      let parsed = Pla.parse_file path in
      Alcotest.(check bool) "file roundtrip" true
        (Mo_cover.equal_semantics mo parsed.Pla.cover);
      Alcotest.(check (option (list string))) "labels kept" (Some [ "a"; "b"; "c" ])
        parsed.Pla.input_labels)

let test_pla_roundtrip () =
  let mo = fig7_function () in
  let text = Pla.to_string mo in
  let parsed = Pla.parse_string text in
  Alcotest.(check bool) "roundtrip semantics" true
    (Mo_cover.equal_semantics mo parsed.Pla.cover);
  Alcotest.(check int) "roundtrip P" (Mo_cover.product_count mo)
    (Mo_cover.product_count parsed.Pla.cover)

let test_pla_parse_directives () =
  let text =
    "# a comment\n.i 3\n.o 2\n.ilb a b c\n.ob f g\n.p 2\n11- 10\n--1 01\n.e\n"
  in
  let parsed = Pla.parse_string text in
  Alcotest.(check int) "inputs" 3 (Mo_cover.n_inputs parsed.Pla.cover);
  Alcotest.(check (option (list string))) "ilb" (Some [ "a"; "b"; "c" ]) parsed.Pla.input_labels;
  Alcotest.(check (option (list string))) "ob" (Some [ "f"; "g" ]) parsed.Pla.output_labels;
  Alcotest.(check int) "rows" 2 (Mo_cover.product_count parsed.Pla.cover);
  Alcotest.(check int) "no dc" 0 (Mo_cover.product_count parsed.Pla.dc)

let test_pla_dc_rows () =
  let text = ".i 2\n.o 2\n.type fr\n11 1-\n00 -1\n10 01\n.e\n" in
  let parsed = Pla.parse_string text in
  (* ON rows: 11->o1, 00->o2, 10->o2; DC: 11 dc for o2, 00 dc for o1 *)
  Alcotest.(check int) "on rows" 3 (Mo_cover.product_count parsed.Pla.cover);
  Alcotest.(check int) "dc rows" 2 (Mo_cover.product_count parsed.Pla.dc);
  let dc_o2 = Mo_cover.output_cover parsed.Pla.dc 1 in
  Alcotest.(check (list string)) "o2's dc cube" [ "11" ] (Cover.to_strings dc_o2)

let test_pla_errors () =
  let bad_row = ".i 2\n.o 1\n111 1\n" in
  Alcotest.(check bool) "wrong width rejected" true
    (try
       ignore (Pla.parse_string bad_row);
       false
     with Pla.Parse_error _ -> true);
  Alcotest.(check bool) "missing .i rejected" true
    (try
       ignore (Pla.parse_string ".o 1\n1 1\n");
       false
     with Pla.Parse_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Random_sop                                                         *)
(* ------------------------------------------------------------------ *)

let test_random_cover_shape () =
  let prng = Mcx_util.Prng.create 99 in
  let params = { Random_sop.n_inputs = 8; n_products = 12; literal_probability = 0.5 } in
  let f = Random_sop.random_cover prng params in
  Alcotest.(check int) "arity" 8 (Cover.arity f);
  Alcotest.(check int) "products" 12 (Cover.size f);
  List.iter
    (fun c -> Alcotest.(check bool) "no universe cube" true (Cube.num_literals c > 0))
    (Cover.cubes f)

let test_random_cover_deterministic () =
  let params = { Random_sop.n_inputs = 6; n_products = 5; literal_probability = 0.5 } in
  let f1 = Random_sop.random_cover (Mcx_util.Prng.create 4) params in
  let f2 = Random_sop.random_cover (Mcx_util.Prng.create 4) params in
  Alcotest.(check (list string)) "same seed same cover" (Cover.to_strings f1)
    (Cover.to_strings f2)

(* ------------------------------------------------------------------ *)
(* Bdd                                                                *)
(* ------------------------------------------------------------------ *)

let test_bdd_basic_ops () =
  let m = Bdd.manager ~n_vars:3 () in
  let x0 = Bdd.var m 0 and x1 = Bdd.var m 1 in
  Alcotest.(check bool) "x & !x = 0" true (Bdd.is_false (Bdd.and_ m x0 (Bdd.not_ m x0)));
  Alcotest.(check bool) "x | !x = 1" true (Bdd.is_true (Bdd.or_ m x0 (Bdd.not_ m x0)));
  Alcotest.(check bool) "xor self" true (Bdd.is_false (Bdd.xor m x1 x1));
  Alcotest.(check bool) "de morgan" true
    (Bdd.equal (Bdd.nand m x0 x1) (Bdd.or_ m (Bdd.not_ m x0) (Bdd.not_ m x1)));
  Alcotest.(check bool) "nvar = not var" true (Bdd.equal (Bdd.nvar m 2) (Bdd.not_ m (Bdd.var m 2)))

let test_bdd_canonical () =
  let m = Bdd.manager ~n_vars:4 () in
  let a = Bdd.or_ m (Bdd.var m 0) (Bdd.var m 1) in
  let b = Bdd.or_ m (Bdd.var m 1) (Bdd.var m 0) in
  Alcotest.(check bool) "commutative builds same node" true (Bdd.equal a b);
  (* x0 + x0'x1 == x0 + x1 *)
  let c = Bdd.or_ m (Bdd.var m 0) (Bdd.and_ m (Bdd.nvar m 0) (Bdd.var m 1)) in
  Alcotest.(check bool) "absorption is canonical" true (Bdd.equal a c)

let test_bdd_eval_vs_cover () =
  let f = cover [ "11-0"; "0-1-"; "--01" ] in
  let m = Bdd.manager ~n_vars:4 () in
  let b = Bdd.of_cover m f in
  for idx = 0 to 15 do
    let v = Array.init 4 (fun i -> (idx lsr i) land 1 = 1) in
    Alcotest.(check bool) "bdd = cover" (Cover.eval f v) (Bdd.eval b v)
  done

let test_bdd_count_minterms () =
  let m = Bdd.manager ~n_vars:4 () in
  Alcotest.(check (float 1e-9)) "true covers all" 16. (Bdd.count_minterms m (Bdd.bdd_true m));
  Alcotest.(check (float 1e-9)) "single var covers half" 8.
    (Bdd.count_minterms m (Bdd.var m 2));
  let f = Bdd.of_cover m (cover [ "11--" ]) in
  Alcotest.(check (float 1e-9)) "cube of 2 lits" 4. (Bdd.count_minterms m f)

let test_bdd_cover_equal_wide () =
  (* 23-variable check, far beyond truth-table range: odd parity over 10
     of the variables equals its own double complement. *)
  let vars = List.init 10 Fun.id in
  let parity even =
    let cube_of bits =
      let lits = Array.make 23 Literal.Absent in
      List.iteri
        (fun i v -> lits.(v) <- (if (bits lsr i) land 1 = 1 then Literal.Pos else Literal.Neg))
        vars;
      Cube.of_literals lits
    in
    let want = if even then 0 else 1 in
    let rec popcount x = if x = 0 then 0 else (x land 1) + popcount (x lsr 1) in
    Cover.create ~arity:23
      (List.filter_map
         (fun bits -> if popcount bits land 1 = want then Some (cube_of bits) else None)
         (List.init 1024 Fun.id))
  in
  let odd = parity false and even = parity true in
  Alcotest.(check bool) "odd != even" false (Bdd.cover_equal odd even);
  Alcotest.(check bool) "odd = odd (distinct lists)" true (Bdd.cover_equal odd odd);
  (* parity BDDs are linear-size in the variable count *)
  let m = Bdd.manager ~n_vars:23 () in
  Alcotest.(check bool) "parity bdd is small" true (Bdd.size (Bdd.of_cover m odd) <= 2 * 23)

let test_bdd_manager_mixing () =
  let m1 = Bdd.manager ~n_vars:2 () and m2 = Bdd.manager ~n_vars:2 () in
  Alcotest.(check bool) "cross-manager rejected" true
    (try
       ignore (Bdd.and_ m1 (Bdd.var m1 0) (Bdd.var m2 0));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                  *)
(* ------------------------------------------------------------------ *)

let gen_cover ~arity ~max_products =
  QCheck2.Gen.(
    let gen_lit =
      oneofl [ Literal.Pos; Literal.Neg; Literal.Absent; Literal.Absent ]
    in
    let gen_cube = array_size (pure arity) gen_lit in
    let* n = int_range 0 max_products in
    let+ cubes = list_size (pure n) gen_cube in
    Cover.create ~arity (List.map Cube.of_literals cubes))

let prop_complement_correct =
  QCheck2.Test.make ~name:"complement: f + f' taut, f . f' empty" ~count:150
    (gen_cover ~arity:5 ~max_products:6)
    (fun f ->
      let fc = Complement.complement f in
      let tt = Truthtable.of_cover f and ttc = Truthtable.of_cover fc in
      Truthtable.equal ttc (Truthtable.complement tt))

let prop_espresso_preserves =
  QCheck2.Test.make ~name:"espresso preserves semantics" ~count:100
    (gen_cover ~arity:5 ~max_products:8)
    (fun f ->
      let g = Minimize.espresso f in
      Cover.equal_semantics f g && Cover.size g <= max 1 (Cover.size f))

let prop_qm_exact =
  QCheck2.Test.make ~name:"QM minimize reproduces truth table" ~count:60
    QCheck2.Gen.(int_bound 0xFFFF)
    (fun bits ->
      let tt = Truthtable.of_fun_int ~arity:4 (fun i -> (bits lsr i) land 1 = 1) in
      let g = Qm.minimize tt in
      Truthtable.equal tt (Truthtable.of_cover g))

let prop_tautology_vs_truthtable =
  QCheck2.Test.make ~name:"tautology check agrees with truth table" ~count:150
    (gen_cover ~arity:4 ~max_products:6)
    (fun f ->
      Bool.equal (Tautology.check f)
        (Truthtable.on_count (Truthtable.of_cover f) = 16))

let prop_expand_preserves =
  QCheck2.Test.make ~name:"expand preserves semantics" ~count:100
    (gen_cover ~arity:5 ~max_products:6)
    (fun f -> Cover.equal_semantics f (Minimize.expand f))

let prop_irredundant_preserves =
  QCheck2.Test.make ~name:"irredundant preserves semantics" ~count:100
    (gen_cover ~arity:5 ~max_products:6)
    (fun f -> Cover.equal_semantics f (Minimize.irredundant f))

let prop_reduce_preserves =
  QCheck2.Test.make ~name:"reduce preserves semantics" ~count:100
    (gen_cover ~arity:5 ~max_products:6)
    (fun f -> Cover.equal_semantics f (Minimize.reduce f))

let prop_sharp_is_difference =
  QCheck2.Test.make ~name:"cover sharp = conjunction with complement" ~count:150
    QCheck2.Gen.(pair (gen_cover ~arity:4 ~max_products:4) (gen_cover ~arity:4 ~max_products:4))
    (fun (f, g) ->
      let d = Cover.sharp f g in
      let ok = ref true in
      for idx = 0 to 15 do
        let v = Array.init 4 (fun i -> (idx lsr i) land 1 = 1) in
        if Cover.eval d v <> (Cover.eval f v && not (Cover.eval g v)) then ok := false
      done;
      !ok)

let prop_cube_sharp_disjoint =
  QCheck2.Test.make ~name:"cube sharp pieces are pairwise disjoint" ~count:200
    QCheck2.Gen.(
      pair
        (array_size (pure 5) (oneofl [ Literal.Pos; Literal.Neg; Literal.Absent ]))
        (array_size (pure 5) (oneofl [ Literal.Pos; Literal.Neg; Literal.Absent ])))
    (fun (a, b) ->
      let a = Cube.of_literals a and b = Cube.of_literals b in
      let pieces = Cube.sharp a b in
      let rec pairwise = function
        | [] -> true
        | x :: rest ->
          List.for_all (fun y -> Option.is_none (Cube.intersect x y)) rest && pairwise rest
      in
      pairwise pieces)

let prop_espresso_dc_sound =
  QCheck2.Test.make ~name:"espresso_dc: covers ON, stays inside ON u DC" ~count:80
    QCheck2.Gen.(pair (gen_cover ~arity:4 ~max_products:5) (gen_cover ~arity:4 ~max_products:3))
    (fun (on, dc) ->
      let g = Minimize.espresso_dc ~dc on in
      Tautology.cover_covered on (Cover.union g dc)
      && Tautology.cover_covered g (Cover.union on dc))

let prop_pla_roundtrip =
  QCheck2.Test.make ~name:"PLA print/parse roundtrip" ~count:100
    (gen_cover ~arity:6 ~max_products:8)
    (fun f ->
      let mo = Mo_cover.of_single f in
      let parsed = Pla.parse_string (Pla.to_string mo) in
      Mo_cover.equal_semantics mo parsed.Pla.cover)

let gen_mo ~arity ~max_products =
  QCheck2.Gen.(
    let gen_lit = oneofl [ Literal.Pos; Literal.Neg; Literal.Absent; Literal.Absent ] in
    let gen_cube = array_size (pure arity) gen_lit in
    let* n1 = int_range 1 max_products in
    let* n2 = int_range 1 max_products in
    let* c1 = list_size (pure n1) gen_cube in
    let+ c2 = list_size (pure n2) gen_cube in
    Mo_cover.of_covers
      [
        Cover.create ~arity (List.map Cube.of_literals c1);
        Cover.create ~arity (List.map Cube.of_literals c2);
      ])

let prop_joint_minimize_preserves =
  QCheck2.Test.make ~name:"joint minimization preserves all outputs" ~count:100
    (gen_mo ~arity:5 ~max_products:6)
    (fun mo ->
      let m = Mo_minimize.minimize_joint mo in
      Bdd.mo_cover_equal mo m && Mo_cover.product_count m <= Mo_cover.product_count mo)

let prop_bdd_matches_truthtable =
  QCheck2.Test.make ~name:"BDD of cover agrees with truth table" ~count:150
    (gen_cover ~arity:5 ~max_products:7)
    (fun f ->
      let m = Bdd.manager ~n_vars:5 () in
      let b = Bdd.of_cover m f in
      let tt = Truthtable.of_cover f in
      let ok = ref true in
      for idx = 0 to 31 do
        let v = Array.init 5 (fun i -> (idx lsr i) land 1 = 1) in
        if Bdd.eval b v <> Truthtable.eval tt v then ok := false
      done;
      !ok)

let prop_bdd_complement =
  QCheck2.Test.make ~name:"BDD: cover_equal(complement(f), not f)" ~count:80
    (gen_cover ~arity:5 ~max_products:6)
    (fun f ->
      let fc = Complement.complement f in
      let m = Bdd.manager ~n_vars:5 () in
      Bdd.equal (Bdd.of_cover m fc) (Bdd.not_ m (Bdd.of_cover m f)))

let prop_supercube_covers =
  QCheck2.Test.make ~name:"supercube covers both operands" ~count:200
    QCheck2.Gen.(
      pair
        (array_size (pure 6) (oneofl [ Literal.Pos; Literal.Neg; Literal.Absent ]))
        (array_size (pure 6) (oneofl [ Literal.Pos; Literal.Neg; Literal.Absent ])))
    (fun (a, b) ->
      let a = Cube.of_literals a and b = Cube.of_literals b in
      let s = Cube.supercube a b in
      Cube.covers s a && Cube.covers s b)

let prop_intersect_iff_distance_zero =
  QCheck2.Test.make ~name:"intersection non-empty iff distance 0" ~count:200
    QCheck2.Gen.(
      pair
        (array_size (pure 6) (oneofl [ Literal.Pos; Literal.Neg; Literal.Absent ]))
        (array_size (pure 6) (oneofl [ Literal.Pos; Literal.Neg; Literal.Absent ])))
    (fun (a, b) ->
      let a = Cube.of_literals a and b = Cube.of_literals b in
      Bool.equal (Option.is_some (Cube.intersect a b)) (Cube.distance a b = 0))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_complement_correct;
      prop_espresso_preserves;
      prop_qm_exact;
      prop_tautology_vs_truthtable;
      prop_expand_preserves;
      prop_irredundant_preserves;
      prop_reduce_preserves;
      prop_pla_roundtrip;
      prop_espresso_dc_sound;
      prop_sharp_is_difference;
      prop_cube_sharp_disjoint;
      prop_bdd_matches_truthtable;
      prop_bdd_complement;
      prop_joint_minimize_preserves;
      prop_supercube_covers;
      prop_intersect_iff_distance_zero;
    ]

let () =
  Alcotest.run "mcx_logic"
    [
      ( "literal",
        [
          Alcotest.test_case "chars" `Quick test_literal_chars;
          Alcotest.test_case "algebra" `Quick test_literal_algebra;
        ] );
      ( "cube",
        [
          Alcotest.test_case "string roundtrip" `Quick test_cube_string_roundtrip;
          Alcotest.test_case "eval" `Quick test_cube_eval;
          Alcotest.test_case "covers" `Quick test_cube_covers;
          Alcotest.test_case "intersect" `Quick test_cube_intersect;
          Alcotest.test_case "distance/supercube" `Quick test_cube_distance_supercube;
          Alcotest.test_case "cofactor" `Quick test_cube_cofactor;
          Alcotest.test_case "merge adjacent" `Quick test_cube_merge_adjacent;
          Alcotest.test_case "sharp" `Quick test_cube_sharp;
          Alcotest.test_case "minterms" `Quick test_cube_minterms;
          Alcotest.test_case "literals" `Quick test_cube_literals;
        ] );
      ( "cover",
        [
          Alcotest.test_case "eval" `Quick test_cover_eval;
          Alcotest.test_case "counts (paper fig3)" `Quick test_cover_counts;
          Alcotest.test_case "single-cube containment" `Quick test_cover_scc;
          Alcotest.test_case "cofactor" `Quick test_cover_cofactor;
          Alcotest.test_case "most binate var" `Quick test_cover_binate;
          Alcotest.test_case "misc" `Quick test_cover_misc;
          Alcotest.test_case "sharp" `Quick test_cover_sharp;
        ] );
      ( "tautology",
        [
          Alcotest.test_case "basic" `Quick test_tautology_basic;
          Alcotest.test_case "binate recursion" `Quick test_tautology_binate_recursion;
          Alcotest.test_case "cube covered" `Quick test_cube_covered;
          Alcotest.test_case "cover equality" `Quick test_cover_equal;
        ] );
      ( "complement",
        [
          Alcotest.test_case "single cube" `Quick test_complement_example;
          Alcotest.test_case "empty/top" `Quick test_complement_empty_top;
          Alcotest.test_case "paper example" `Quick test_complement_paper_example;
        ] );
      ( "minimize",
        [
          Alcotest.test_case "expand merges" `Quick test_expand_merges_minterms;
          Alcotest.test_case "irredundant" `Quick test_irredundant;
          Alcotest.test_case "espresso semantics" `Quick test_espresso_preserves_semantics;
          Alcotest.test_case "espresso with DC" `Quick test_espresso_dc;
          Alcotest.test_case "DC respects off-set" `Quick test_espresso_dc_respects_offset;
        ] );
      ( "truthtable",
        [
          Alcotest.test_case "roundtrip" `Quick test_tt_roundtrip;
          Alcotest.test_case "indexing" `Quick test_tt_indexing;
          Alcotest.test_case "complement" `Quick test_tt_complement;
        ] );
      ( "qm",
        [
          Alcotest.test_case "classic" `Quick test_qm_classic;
          Alcotest.test_case "xor3" `Quick test_qm_xor;
          Alcotest.test_case "constants" `Quick test_qm_constant;
        ] );
      ( "mo_cover",
        [
          Alcotest.test_case "sharing" `Quick test_mo_sharing;
          Alcotest.test_case "paper row counts" `Quick test_mo_paper_counts;
          Alcotest.test_case "eval" `Quick test_mo_eval;
          Alcotest.test_case "complement" `Quick test_mo_complement;
          Alcotest.test_case "minimize" `Quick test_mo_minimize;
        ] );
      ( "pla",
        [
          Alcotest.test_case "roundtrip" `Quick test_pla_roundtrip;
          Alcotest.test_case "directives" `Quick test_pla_parse_directives;
          Alcotest.test_case "errors" `Quick test_pla_errors;
          Alcotest.test_case "don't-care rows" `Quick test_pla_dc_rows;
          Alcotest.test_case "file roundtrip" `Quick test_pla_file_roundtrip;
        ] );
      ( "mo_minimize",
        [
          Alcotest.test_case "shares products" `Quick test_joint_shares_products;
          Alcotest.test_case "output expansion" `Quick test_joint_output_expansion;
          Alcotest.test_case "obligations helper" `Quick test_joint_obligations_helper;
        ] );
      ( "bdd",
        [
          Alcotest.test_case "basic ops" `Quick test_bdd_basic_ops;
          Alcotest.test_case "canonicity" `Quick test_bdd_canonical;
          Alcotest.test_case "eval vs cover" `Quick test_bdd_eval_vs_cover;
          Alcotest.test_case "count minterms" `Quick test_bdd_count_minterms;
          Alcotest.test_case "wide cover equality" `Quick test_bdd_cover_equal_wide;
          Alcotest.test_case "manager mixing" `Quick test_bdd_manager_mixing;
        ] );
      ( "random_sop",
        [
          Alcotest.test_case "shape" `Quick test_random_cover_shape;
          Alcotest.test_case "deterministic" `Quick test_random_cover_deterministic;
        ] );
      ("properties", qcheck_cases);
    ]
