(* Checkpoint journal tests: replay (in-memory and from disk), torn-line
   tolerance, deterministic fault injection at any job count, and the
   degradation protocol (failures, manifest, exit code).

   The journal registry is keyed by directory and lives for the whole
   process, so every test works in a fresh temp directory; reloading a
   journal "as a new process would" is simulated by copying the file to a
   directory the registry has never seen. *)

open Mcx_util

let codec = Checkpoint.Codec.int

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "mcx-ckpt-test-%d-%d" (Unix.getpid ()) !tmp_counter)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* Copy [src_dir]'s journal into a brand-new directory, optionally
   transforming the bytes — the moral equivalent of restarting the
   process on a (possibly damaged) journal. *)
let copied_journal ?(transform = Fun.id) src_dir =
  let dst = fresh_dir () in
  Sys.mkdir dst 0o755;
  write_file
    (Filename.concat dst "journal.jsonl")
    (transform (read_file (Filename.concat src_dir "journal.jsonl")));
  dst

let inline_pool () = Pool.create ~jobs:1 ()

(* --- replay ----------------------------------------------------------- *)

let test_replay_in_process () =
  Checkpoint.reset ();
  let dir = fresh_dir () in
  let ckpt = Checkpoint.start ~dir ~experiment:"replay" ~seed:1 () in
  let section = "s n=8" in
  let r1 =
    Checkpoint.map ckpt ~pool:(inline_pool ()) ~section ~n:8 ~codec (fun i -> i * i)
  in
  Alcotest.(check (array (option int)))
    "first run completes"
    (Array.init 8 (fun i -> Some (i * i)))
    r1;
  (* A second start on the same directory must serve every trial from the
     journal: the trial function is never called. *)
  let ckpt2 = Checkpoint.start ~dir ~experiment:"replay" ~seed:1 () in
  let calls = ref 0 in
  let r2 =
    Checkpoint.map ckpt2 ~pool:(inline_pool ()) ~section ~n:8 ~codec (fun i ->
        incr calls;
        i * i)
  in
  Alcotest.(check int) "no trial re-ran" 0 !calls;
  Alcotest.(check (array (option int))) "replay identical" r1 r2

let test_replay_from_disk () =
  Checkpoint.reset ();
  let dir = fresh_dir () in
  let ckpt = Checkpoint.start ~dir ~experiment:"disk" ~seed:9 () in
  let section = "s n=6" in
  let r1 =
    Checkpoint.map ckpt ~pool:(inline_pool ()) ~section ~n:6 ~codec (fun i -> 7 * i)
  in
  let dir2 = copied_journal dir in
  let ckpt2 = Checkpoint.start ~dir:dir2 ~experiment:"disk" ~seed:9 () in
  let calls = ref 0 in
  let r2 =
    Checkpoint.map ckpt2 ~pool:(inline_pool ()) ~section ~n:6 ~codec (fun i ->
        incr calls;
        7 * i)
  in
  Alcotest.(check int) "loaded journal replays all trials" 0 !calls;
  Alcotest.(check (array (option int))) "disk replay identical" r1 r2

let test_section_mismatch_reruns () =
  Checkpoint.reset ();
  let dir = fresh_dir () in
  let ckpt = Checkpoint.start ~dir ~experiment:"sect" ~seed:4 () in
  let (_ : int option array) =
    Checkpoint.map ckpt ~pool:(inline_pool ()) ~section:"samples=4" ~n:4 ~codec Fun.id
  in
  (* A different section string pins different trial parameters: nothing
     may be served from the journal. *)
  let calls = ref 0 in
  let (_ : int option array) =
    Checkpoint.map ckpt ~pool:(inline_pool ()) ~section:"samples=5" ~n:4 ~codec
      (fun i ->
        incr calls;
        i)
  in
  Alcotest.(check int) "all trials re-ran" 4 !calls

(* --- interruption and resume ------------------------------------------ *)

let test_partial_then_resume () =
  Checkpoint.reset ();
  let dir = fresh_dir () in
  let section = "s n=12" in
  let ckpt = Checkpoint.start ~dir ~experiment:"partial" ~seed:2 () in
  (* First run abandons trials >= 5 via Cancelled — the cooperative path a
     SIGINT takes — so the journal holds exactly trials 0..4. *)
  let r1 =
    Checkpoint.map ckpt ~pool:(inline_pool ()) ~section ~n:12 ~codec (fun i ->
        if i >= 5 then raise Pool.Cancelled else i * 3)
  in
  Array.iteri
    (fun i v ->
      Alcotest.(check (option int))
        (Printf.sprintf "trial %d after interrupt" i)
        (if i < 5 then Some (i * 3) else None)
        v)
    r1;
  Alcotest.(check (list string)) "cancellation is not failure" []
    (List.map (fun (f : Checkpoint.failure) -> f.error) (Checkpoint.failures ()));
  (* Resume: only the missing trials run, and the merged result equals an
     uninterrupted run. *)
  let ran = ref [] in
  let r2 =
    Checkpoint.map ckpt ~pool:(inline_pool ()) ~section ~n:12 ~codec (fun i ->
        ran := i :: !ran;
        i * 3)
  in
  Alcotest.(check (list int))
    "only missing trials ran" [ 5; 6; 7; 8; 9; 10; 11 ]
    (List.sort compare !ran);
  Alcotest.(check (array (option int)))
    "resume completes the sweep"
    (Array.init 12 (fun i -> Some (i * 3)))
    r2

let test_torn_line_reruns () =
  Checkpoint.reset ();
  let dir = fresh_dir () in
  let section = "s n=5" in
  let ckpt = Checkpoint.start ~dir ~experiment:"torn" ~seed:3 () in
  let r1 =
    Checkpoint.map ckpt ~pool:(inline_pool ()) ~section ~n:5 ~codec (fun i -> i + 100)
  in
  (* Tear the final journal line mid-write, as a kill would. *)
  let dir2 =
    copied_journal dir ~transform:(fun s -> String.sub s 0 (String.length s - 10))
  in
  let ckpt2 = Checkpoint.start ~dir:dir2 ~experiment:"torn" ~seed:3 () in
  let calls = ref 0 in
  let r2 =
    Checkpoint.map ckpt2 ~pool:(inline_pool ()) ~section ~n:5 ~codec (fun i ->
        incr calls;
        i + 100)
  in
  Alcotest.(check int) "exactly the torn trial re-ran" 1 !calls;
  Alcotest.(check (array (option int))) "result unaffected by the tear" r1 r2

let test_corrupt_digest_reruns () =
  Checkpoint.reset ();
  let dir = fresh_dir () in
  let section = "s n=3" in
  let ckpt = Checkpoint.start ~dir ~experiment:"digest" ~seed:8 () in
  let (_ : int option array) =
    Checkpoint.map ckpt ~pool:(inline_pool ()) ~section ~n:3 ~codec (fun i -> i + 1)
  in
  (* Rewrite every trial line with a digest that no longer matches its
     result: the loader must drop all of them. *)
  let break_digests contents =
    String.split_on_char '\n' contents
    |> List.map (fun line ->
           match Json_out.of_string line with
           | Ok (Json_out.Obj fields)
             when List.mem_assoc "trial" fields ->
             Json_out.to_string
               (Json_out.Obj
                  (List.map
                     (fun (k, v) ->
                       if String.equal k "digest" then (k, Json_out.Str "0000") else (k, v))
                     fields))
           | _ -> line)
    |> String.concat "\n"
  in
  let dir2 = copied_journal dir ~transform:break_digests in
  let ckpt2 = Checkpoint.start ~dir:dir2 ~experiment:"digest" ~seed:8 () in
  let calls = ref 0 in
  let r2 =
    Checkpoint.map ckpt2 ~pool:(inline_pool ()) ~section ~n:3 ~codec (fun i ->
        incr calls;
        i + 1)
  in
  Alcotest.(check int) "all tampered trials re-ran" 3 !calls;
  Alcotest.(check (array (option int)))
    "results rebuilt" [| Some 1; Some 2; Some 3 |] r2

(* --- journal schema ---------------------------------------------------- *)

let test_journal_schema () =
  Checkpoint.reset ();
  let dir = fresh_dir () in
  let ckpt = Checkpoint.start ~dir ~experiment:"schema" ~seed:6 () in
  let (_ : (int * bool) option array) =
    Checkpoint.map ckpt ~pool:(inline_pool ()) ~section:"s" ~n:4
      ~codec:Checkpoint.Codec.(pair int bool)
      (fun i -> (i, i mod 2 = 0))
  in
  (match Checkpoint.journal_path ckpt with
  | None -> Alcotest.fail "journal_path missing with dir set"
  | Some path ->
    let lines =
      read_file path |> String.split_on_char '\n'
      |> List.filter (fun l -> not (String.equal (String.trim l) ""))
    in
    Alcotest.(check int) "header + one line per trial" 5 (List.length lines);
    (match Json_out.of_string (List.hd lines) with
    | Ok header ->
      Alcotest.(check (option string))
        "schema tag" (Some "mcx-journal/1")
        (Option.bind (Json_out.member "schema" header) Json_out.to_string_opt)
    | Error e -> Alcotest.fail ("header does not parse: " ^ e));
    List.iter
      (fun line ->
        match Json_out.of_string line with
        | Error e -> Alcotest.fail ("trial line does not parse: " ^ e)
        | Ok json ->
          List.iter
            (fun field ->
              Alcotest.(check bool)
                (field ^ " present") true
                (Option.is_some (Json_out.member field json)))
            [ "experiment"; "seed"; "section"; "trial"; "digest"; "result" ])
      (List.tl lines))

(* --- fault injection ---------------------------------------------------- *)

(* Outcomes and the set of permanently failed trials must not depend on
   the job count: injection is keyed on (seed, experiment, section, trial,
   attempt), never on scheduling. *)
let test_fault_injection_deterministic () =
  Unix.putenv "MCX_FAULT_RATE" "0.4";
  Unix.putenv "MCX_TRIAL_RETRIES" "1";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "MCX_FAULT_RATE" "";
      Unix.putenv "MCX_TRIAL_RETRIES" "")
    (fun () ->
      let run jobs =
        Checkpoint.reset ();
        let pool = Pool.create ~jobs () in
        let ckpt = Checkpoint.start ~experiment:"fault" ~seed:7 () in
        let r =
          Checkpoint.map ckpt ~pool ~section:"s n=64" ~n:64 ~codec (fun i -> i)
        in
        Pool.shutdown pool;
        let failed =
          List.sort compare
            (List.map (fun (f : Checkpoint.failure) -> f.trial) (Checkpoint.failures ()))
        in
        (r, failed)
      in
      let r1, f1 = run 1 in
      let r4, f4 = run 4 in
      Alcotest.(check (array (option int))) "outcomes identical at 1 vs 4 jobs" r1 r4;
      Alcotest.(check (list int)) "failed trials identical" f1 f4;
      Alcotest.(check bool) "injection actually fired" true (f1 <> []);
      Alcotest.(check bool) "most trials survived retries" true
        (Array.exists Option.is_some r1);
      (* Each permanent failure burned exactly retries + 1 attempts and
         names the injected fault. *)
      List.iter
        (fun (f : Checkpoint.failure) ->
          Alcotest.(check int) "attempts" 2 f.attempts;
          Alcotest.(check bool) "error names the injection" true
            (String.length f.error > 0))
        (Checkpoint.failures ()))

(* --- degradation protocol ---------------------------------------------- *)

let test_finalize_manifest () =
  Checkpoint.reset ();
  Unix.putenv "MCX_TRIAL_RETRIES" "0";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "MCX_TRIAL_RETRIES" "")
    (fun () ->
      let dir = fresh_dir () in
      let ckpt = Checkpoint.start ~dir ~experiment:"degrade" ~seed:5 () in
      let r =
        Checkpoint.map ckpt ~pool:(inline_pool ()) ~section:"s n=6" ~n:6 ~codec
          (fun i -> if i mod 2 = 1 then failwith "boom" else i)
      in
      Array.iteri
        (fun i v ->
          Alcotest.(check (option int))
            (Printf.sprintf "trial %d" i)
            (if i mod 2 = 1 then None else Some i)
            v)
        r;
      let fs = Checkpoint.failures () in
      Alcotest.(check int) "three permanent failures" 3 (List.length fs);
      List.iter
        (fun (f : Checkpoint.failure) ->
          Alcotest.(check int) "single attempt under retries=0" 1 f.attempts;
          Alcotest.(check bool) "error captured" true
            (String.length f.error > 0))
        fs;
      Alcotest.(check int) "finalize exits 4" 4 (Checkpoint.finalize ());
      let path = Checkpoint.manifest_path () in
      Alcotest.(check bool) "manifest written" true (Sys.file_exists path);
      (match Json_out.of_string (read_file path) with
      | Error e -> Alcotest.fail ("manifest does not parse: " ^ e)
      | Ok json ->
        Alcotest.(check (option string))
          "manifest schema" (Some "mcx-failed-trials/1")
          (Option.bind (Json_out.member "schema" json) Json_out.to_string_opt);
        Alcotest.(check (option int))
          "manifest count" (Some 3)
          (Option.bind (Json_out.member "count" json) Json_out.to_int_opt));
      Checkpoint.reset ();
      Alcotest.(check int) "clean run finalizes 0" 0 (Checkpoint.finalize ()))

(* --- end-to-end: a real experiment, checkpointed ------------------------ *)

let test_experiment_replay_equals_plain () =
  Checkpoint.reset ();
  let dir = fresh_dir () in
  Unix.putenv "MCX_CHECKPOINT" dir;
  Fun.protect
    ~finally:(fun () -> Unix.putenv "MCX_CHECKPOINT" "")
    (fun () ->
      let a = Mcx_experiments.Yield.run ~samples:12 ~seed:5 ~benchmark:"rd53" () in
      (* Second run replays the journal end to end. *)
      let b = Mcx_experiments.Yield.run ~samples:12 ~seed:5 ~benchmark:"rd53" () in
      Unix.putenv "MCX_CHECKPOINT" "";
      let c = Mcx_experiments.Yield.run ~samples:12 ~seed:5 ~benchmark:"rd53" () in
      Alcotest.(check bool) "checkpointed = replayed" true (a = b);
      Alcotest.(check bool) "checkpointed = uncheckpointed" true (a = c))

(* --- Codec round-trips ------------------------------------------------ *)

(* Every combinator must survive the full journal path: encode, render
   to a JSONL line, re-parse, decode. *)
let codec_trip (c : 'a Checkpoint.Codec.t) v =
  match Json_out.of_string (Json_out.to_string (c.Checkpoint.Codec.encode v)) with
  | Error _ -> None
  | Ok json -> c.Checkpoint.Codec.decode json

let gen_finite_float =
  QCheck2.Gen.(map (fun f -> if Float.is_finite f then f else 0.) float)

let gen_opt g = QCheck2.Gen.(oneof [ pure None; map Option.some g ])

let float_bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let prop_codec name gen c eq =
  QCheck2.Test.make ~name ~count:300 gen (fun v ->
      match codec_trip c v with Some w -> eq v w | None -> false)

type trial_repr = { label : string; count : int; ratio : float }

let trial_codec =
  let open Checkpoint.Codec in
  conv
    (fun { label; count; ratio } -> ((label, count), ratio))
    (fun ((label, count), ratio) -> { label; count; ratio })
    (pair (pair string int) float)

module C = Checkpoint.Codec

let codec_qcheck_cases =
  let open QCheck2.Gen in
  let eq = ( = ) in
  List.map QCheck_alcotest.to_alcotest
    [
      prop_codec "codec: bool" bool C.bool eq;
      prop_codec "codec: int" int C.int eq;
      prop_codec "codec: string (all bytes)" string C.string eq;
      prop_codec "codec: float is bit-exact" gen_finite_float C.float float_bits_equal;
      prop_codec "codec: pair" (pair int string) (C.pair C.int C.string) eq;
      prop_codec "codec: triple"
        (map (fun ((a, b), c) -> (a, b, c)) (pair (pair bool int) string))
        (C.triple C.bool C.int C.string)
        eq;
      prop_codec "codec: quad"
        (map (fun ((a, b), (c, d)) -> (a, b, c, d)) (pair (pair int bool) (pair string int)))
        (C.quad C.int C.bool C.string C.int)
        eq;
      prop_codec "codec: list" (list_size (int_range 0 20) int) (C.list C.int) eq;
      prop_codec "codec: array"
        (map Array.of_list (list_size (int_range 0 20) int))
        (C.array C.int) eq;
      prop_codec "codec: option" (gen_opt int) (C.option C.int) eq;
      prop_codec "codec: nested option" (gen_opt (gen_opt int))
        (C.option (C.option C.int))
        eq;
      prop_codec "codec: conv through a record"
        (map
           (fun ((label, count), ratio) -> { label; count; ratio })
           (pair (pair string int) gen_finite_float))
        trial_codec
        (fun a b ->
          String.equal a.label b.label && a.count = b.count
          && float_bits_equal a.ratio b.ratio);
    ]

let test_codec_edges () =
  let open Checkpoint.Codec in
  (* NaN survives (it journals as null); infinities are documented as
     lossy and come back NaN. *)
  (match codec_trip float Float.nan with
  | Some v ->
    Alcotest.(check bool) "nan is bit-exact" true (float_bits_equal v Float.nan)
  | None -> Alcotest.fail "nan must decode");
  (match codec_trip float Float.infinity with
  | Some v -> Alcotest.(check bool) "inf degrades to nan" true (Float.is_nan v)
  | None -> Alcotest.fail "inf must decode");
  (* Decoders are total: mismatches yield None, never an exception. *)
  Alcotest.(check bool) "int rejects a string" true
    (int.decode (Json_out.Str "3") = None);
  Alcotest.(check bool) "pair rejects wrong arity" true
    ((pair int int).decode (Json_out.List [ Json_out.Int 1 ]) = None);
  Alcotest.(check bool) "list rejects a scalar" true
    ((list int).decode (Json_out.Int 1) = None);
  Alcotest.(check bool) "list rejects a bad element" true
    ((list int).decode (Json_out.List [ Json_out.Int 1; Json_out.Str "x" ]) = None);
  Alcotest.(check bool) "option distinguishes None" true
    ((option int).decode Json_out.Null = Some None)

let () =
  Alcotest.run "checkpoint"
    [
      ( "replay",
        [
          Alcotest.test_case "in-process replay" `Quick test_replay_in_process;
          Alcotest.test_case "from-disk replay" `Quick test_replay_from_disk;
          Alcotest.test_case "section mismatch re-runs" `Quick test_section_mismatch_reruns;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "partial then resume" `Quick test_partial_then_resume;
          Alcotest.test_case "torn line re-runs" `Quick test_torn_line_reruns;
          Alcotest.test_case "corrupt digest re-runs" `Quick test_corrupt_digest_reruns;
        ] );
      ("schema", [ Alcotest.test_case "journal format" `Quick test_journal_schema ]);
      ( "codec",
        Alcotest.test_case "edge cases" `Quick test_codec_edges :: codec_qcheck_cases );
      ( "faults",
        [
          Alcotest.test_case "deterministic at any job count" `Quick
            test_fault_injection_deterministic;
          Alcotest.test_case "finalize + manifest" `Quick test_finalize_manifest;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "yield replay = plain run" `Quick
            test_experiment_replay_equals_plain;
        ] );
    ]
