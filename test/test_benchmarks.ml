open Mcx_benchmarks
open Mcx_logic

(* ------------------------------------------------------------------ *)
(* Arith                                                              *)
(* ------------------------------------------------------------------ *)

let test_count_ones () =
  Alcotest.(check int) "0" 0 (Arith.count_ones 0);
  Alcotest.(check int) "255" 8 (Arith.count_ones 255);
  Alcotest.(check int) "0b10110" 3 (Arith.count_ones 0b10110)

let check_word_semantics name cover ~n_inputs f =
  (* The minimized cover must compute bit k of [f] for every input word. *)
  for x = 0 to (1 lsl n_inputs) - 1 do
    let v = Array.init n_inputs (fun i -> (x lsr i) land 1 = 1) in
    let out = Mo_cover.eval cover v in
    Array.iteri
      (fun k bit ->
        Alcotest.(check bool)
          (Printf.sprintf "%s x=%d bit %d" name x k)
          ((f x lsr k) land 1 = 1)
          bit)
      out
  done

let test_rd53_semantics () =
  check_word_semantics "rd53" (Arith.rd53 ()) ~n_inputs:5 Arith.count_ones

let test_rd73_semantics () =
  check_word_semantics "rd73" (Arith.rd73 ()) ~n_inputs:7 Arith.count_ones

let test_sqrt8_semantics () =
  let isqrt x =
    let rec go r = if (r + 1) * (r + 1) > x then r else go (r + 1) in
    go 0
  in
  check_word_semantics "sqrt8" (Arith.sqrt8 ()) ~n_inputs:8 isqrt

let test_squar5_semantics () =
  check_word_semantics "squar5" (Arith.squar5 ()) ~n_inputs:5 (fun x -> x * x lsr 2)

let test_inc_semantics () =
  check_word_semantics "inc" (Arith.inc ()) ~n_inputs:7 (fun x -> (3 * x) + 1)

let test_clip_saturates () =
  let cover = Arith.clip () in
  Alcotest.(check int) "9 inputs" 9 (Mo_cover.n_inputs cover);
  Alcotest.(check int) "5 outputs" 5 (Mo_cover.n_outputs cover);
  (* +100 clips to +15; -100 (two's complement) clips to -16. *)
  let eval x =
    let v = Array.init 9 (fun i -> (x lsr i) land 1 = 1) in
    let out = Mo_cover.eval cover v in
    Array.to_list out
    |> List.mapi (fun k b -> if b then 1 lsl k else 0)
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "100 -> 15" 15 (eval 100);
  Alcotest.(check int) "-100 -> -16 (0b10000)" 16 (eval ((-100) land 0x1FF));
  Alcotest.(check int) "7 -> 7" 7 (eval 7)

let test_rd_shapes () =
  let rd53 = Arith.rd53 () and rd84 = Arith.rd84 () in
  Alcotest.(check int) "rd53 I" 5 (Mo_cover.n_inputs rd53);
  Alcotest.(check int) "rd53 O" 3 (Mo_cover.n_outputs rd53);
  Alcotest.(check int) "rd84 I" 8 (Mo_cover.n_inputs rd84);
  Alcotest.(check int) "rd84 O" 4 (Mo_cover.n_outputs rd84);
  (* Product counts should land near the paper's espresso results. *)
  let p53 = Mo_cover.product_count rd53 and p84 = Mo_cover.product_count rd84 in
  Alcotest.(check bool) "rd53 P in [25,40] (paper: 31)" true (p53 >= 25 && p53 <= 40);
  Alcotest.(check bool) "rd84 P in [200,320] (paper: 255)" true (p84 >= 200 && p84 <= 320)

(* ------------------------------------------------------------------ *)
(* Synthetic                                                          *)
(* ------------------------------------------------------------------ *)

let params =
  {
    Synthetic.n_inputs = 10;
    n_outputs = 4;
    n_products = 58;
    inclusion_ratio = 29.;
    seed = "42";
    skew = 0.;
  }

let test_synthetic_shape () =
  let c = Synthetic.generate params in
  Alcotest.(check int) "inputs" 10 (Mo_cover.n_inputs c);
  Alcotest.(check int) "outputs" 4 (Mo_cover.n_outputs c);
  Alcotest.(check int) "products exact" 58 (Mo_cover.product_count c)

let test_synthetic_ir_close () =
  let c = Synthetic.generate params in
  let area = (58 + 4) * ((2 * 10) + (2 * 4)) in
  let switches =
    Mo_cover.literal_count c + Mo_cover.connection_count c + (2 * 4)
  in
  let ir = 100. *. float_of_int switches /. float_of_int area in
  Alcotest.(check bool)
    (Printf.sprintf "IR %.1f within 3 points of 29" ir)
    true
    (Float.abs (ir -. 29.) < 3.)

let test_synthetic_every_output_covered () =
  let c = Synthetic.generate params in
  for k = 0 to 3 do
    Alcotest.(check bool) "output has products" true
      (not (Cover.is_empty (Mo_cover.output_cover c k)))
  done

let test_synthetic_deterministic () =
  let a = Synthetic.generate params and b = Synthetic.generate params in
  Alcotest.(check bool) "same seed, same cover" true (Mo_cover.equal_semantics a b);
  let c = Synthetic.generate { params with seed = "43" } in
  Alcotest.(check bool) "different seed differs somewhere" true
    (Mo_cover.product_count c <> Mo_cover.product_count a
    || Pla.to_string c <> Pla.to_string a)

let test_synthetic_rejects_bad () =
  Alcotest.(check bool) "zero products rejected" true
    (try
       ignore (Synthetic.generate { params with n_products = 0 });
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Suite                                                              *)
(* ------------------------------------------------------------------ *)

let test_suite_membership () =
  Alcotest.(check int) "9 table-1 circuits" 9 (List.length Suite.table1);
  Alcotest.(check int) "16 table-2 circuits" 16 (List.length Suite.table2);
  List.iter
    (fun name ->
      Alcotest.(check string) ("find " ^ name) name (Suite.find name).Suite.name)
    [ "rd53"; "alu4"; "cordic"; "t481"; "exp5" ];
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Suite.find "nonesuch");
       false
     with Not_found -> true)

let test_suite_covers_match_specs () =
  List.iter
    (fun b ->
      let c = Suite.cover b in
      Alcotest.(check int) (b.Suite.name ^ " inputs") b.Suite.inputs (Mo_cover.n_inputs c);
      Alcotest.(check int) (b.Suite.name ^ " outputs") b.Suite.outputs (Mo_cover.n_outputs c);
      match b.Suite.source with
      | Suite.Synthetic _ ->
        Alcotest.(check int) (b.Suite.name ^ " products") b.Suite.products
          (Mo_cover.product_count c)
      | Suite.Arithmetic _ -> ())
    Suite.all

let test_suite_memoization () =
  let b = Suite.find "rd53" in
  let c1 = Suite.cover b and c2 = Suite.cover b in
  Alcotest.(check bool) "same physical cover" true (c1 == c2)

let test_suite_negation_rd53 () =
  let b = Suite.find "rd53" in
  let orig = Suite.cover b and neg = Suite.negated_cover b in
  for k = 0 to 2 do
    let f = Mo_cover.output_cover orig k and g = Mo_cover.output_cover neg k in
    Alcotest.(check bool) "union is tautology" true
      (Mcx_logic.Tautology.check (Cover.union f g))
  done

let test_suite_synthetic_negation_stats () =
  let b = Suite.find "misex1" in
  let neg = Suite.negated_cover b in
  Alcotest.(check int) "misex1 negation P' = 46" 46 (Mo_cover.product_count neg)

let test_t481_structure () =
  let f = Arith.t481 () in
  Alcotest.(check int) "256 products" 256 (Mo_cover.product_count f);
  (* f(x) = AND of pairwise XORs. *)
  let eval x =
    let v = Array.init 16 (fun i -> (x lsr i) land 1 = 1) in
    (Mo_cover.eval f v).(0)
  in
  let reference x =
    let ok = ref true in
    for pair = 0 to 7 do
      if ((x lsr (2 * pair)) land 1) = ((x lsr ((2 * pair) + 1)) land 1) then ok := false
    done;
    !ok
  in
  List.iter
    (fun x -> Alcotest.(check bool) (string_of_int x) (reference x) (eval x))
    [ 0; 0xFFFF; 0x5555; 0xAAAA; 0x1234; 0x9999; 21845; 43690 ];
  (* negation: complement on the same points *)
  let neg = Arith.t481_negation () in
  Alcotest.(check int) "negation has 16 products" 16 (Mo_cover.product_count neg);
  List.iter
    (fun x ->
      let v = Array.init 16 (fun i -> (x lsr i) land 1 = 1) in
      Alcotest.(check bool) "complement" (not (reference x)) (Mo_cover.eval neg v).(0))
    [ 0; 0x5555; 0x1234; 12345 ]

let test_cordic_structure () =
  let f = Arith.cordic () in
  Alcotest.(check int) "23 inputs" 23 (Mo_cover.n_inputs f);
  Alcotest.(check int) "2 outputs" 2 (Mo_cover.n_outputs f);
  Alcotest.(check int) "1024 products" 1024 (Mo_cover.product_count f);
  let parity lo v = 
    let p = ref false in
    for i = lo to lo + 9 do
      if v.(i) then p := not !p
    done;
    !p
  in
  let prng = Mcx_util.Prng.create 17 in
  for _ = 1 to 200 do
    let v = Array.init 23 (fun _ -> Mcx_util.Prng.bool prng) in
    let out = Mo_cover.eval f v in
    Alcotest.(check bool) "out0 = parity(0..9)" (parity 0 v) out.(0);
    Alcotest.(check bool) "out1 = parity(13..22)" (parity 13 v) out.(1)
  done

let () =
  Alcotest.run "mcx_benchmarks"
    [
      ( "arith",
        [
          Alcotest.test_case "count_ones" `Quick test_count_ones;
          Alcotest.test_case "rd53 semantics" `Quick test_rd53_semantics;
          Alcotest.test_case "rd73 semantics" `Quick test_rd73_semantics;
          Alcotest.test_case "sqrt8 semantics" `Quick test_sqrt8_semantics;
          Alcotest.test_case "squar5 semantics" `Quick test_squar5_semantics;
          Alcotest.test_case "inc semantics" `Quick test_inc_semantics;
          Alcotest.test_case "clip saturates" `Quick test_clip_saturates;
          Alcotest.test_case "rd shapes" `Quick test_rd_shapes;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "shape" `Quick test_synthetic_shape;
          Alcotest.test_case "IR close to target" `Quick test_synthetic_ir_close;
          Alcotest.test_case "every output covered" `Quick test_synthetic_every_output_covered;
          Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "rejects bad params" `Quick test_synthetic_rejects_bad;
        ] );
      ( "suite",
        [
          Alcotest.test_case "membership" `Quick test_suite_membership;
          Alcotest.test_case "covers match specs" `Quick test_suite_covers_match_specs;
          Alcotest.test_case "memoization" `Quick test_suite_memoization;
          Alcotest.test_case "rd53 negation exact" `Quick test_suite_negation_rd53;
          Alcotest.test_case "synthetic negation stats" `Quick test_suite_synthetic_negation_stats;
          Alcotest.test_case "t481 structure" `Quick test_t481_structure;
          Alcotest.test_case "cordic structure" `Quick test_cordic_structure;
        ] );
    ]
