(* Service-layer tests: wire schema round-trips, canonical digest
   collisions for permuted-equivalent requests, cache cold/warm
   equivalence, byte identity across job counts, the partial-failure
   protocol, and a golden request-file -> response-file replay.

   Regenerating the golden responses (only when the wire format or the
   mapping semantics intentionally change):

     MCX_GOLDEN_REGEN=$PWD/test/golden dune exec test/test_service.exe
*)

open Mcx_util
open Mcx_service

(* A 3-input 2-output cover whose variables have pairwise-distinct
   (positive, complemented) occurrence signatures, so canonicalization
   assigns every relabeling of it the same digest. Optimum crossbar:
   5x10. *)
let pla_base = ".i 3\n.o 2\n11- 10\n1-0 01\n-00 11\n.e"

(* [pla_base] with x0 and x2 swapped — a different request body for the
   same mapping problem. *)
let pla_relabeled = ".i 3\n.o 2\n-11 10\n0-1 01\n00- 11\n.e"

(* [pla_base] with its product rows rotated. *)
let pla_rows_rotated = ".i 3\n.o 2\n-00 11\n11- 10\n1-0 01\n.e"

let request ?(id = "q") ?(defects = Wire.Pristine) ?(config = Wire.default_config)
    source =
  { Wire.id; source; defects; config }

let line req = Json_out.to_string (Wire.request_to_json req)

let mk_server ?(jobs = 2) ?cache_capacity () =
  Serve.create ~pool:(Pool.create ~jobs ()) ?cache_capacity ()

let serve_lines ?jobs ?cache_capacity lines =
  let t = mk_server ?jobs ?cache_capacity () in
  let responses, stats = Serve.serve_batch t ~label:"test" lines in
  (t, responses, stats)

(* --- wire schema ------------------------------------------------------ *)

let test_wire_round_trip () =
  let raw =
    {|{"schema":"mcx-request/1","id":"q1","pla":".i 2\n.o 1\n11 1\n.e",|}
    ^ {|"defects":{"seed":9,"open_rate":0.125,"closed_rate":0.5},|}
    ^ {|"config":{"algorithm":"exact","include_il_row":true,"verify":true,"deadline_ms":250}}|}
  in
  match Wire.request_of_line ~index:0 raw with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok req ->
    Alcotest.(check string) "id" "q1" req.Wire.id;
    Alcotest.(check bool) "verify" true req.Wire.config.Wire.verify;
    Alcotest.(check (option int)) "deadline" (Some 250) req.Wire.config.Wire.deadline_ms;
    (match req.Wire.defects with
    | Wire.Seeded { seed; open_rate; closed_rate } ->
      Alcotest.(check int) "seed" 9 seed;
      Alcotest.(check (float 0.)) "open_rate" 0.125 open_rate;
      Alcotest.(check (float 0.)) "closed_rate" 0.5 closed_rate
    | _ -> Alcotest.fail "expected seeded defects");
    (* to_json / of_line is a fixpoint: re-emitting the parsed request
       and parsing that re-emission yields the same serialization. *)
    let s1 = line req in
    (match Wire.request_of_line ~index:0 s1 with
    | Error e -> Alcotest.failf "re-parse failed: %s" e
    | Ok req2 -> Alcotest.(check string) "fixpoint" s1 (line req2))

let test_wire_defaults () =
  let raw = {|{"schema":"mcx-request/1","pla":".i 1\n.o 1\n1 1\n.e"}|} in
  match Wire.request_of_line ~index:7 raw with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok req ->
    Alcotest.(check string) "anonymous id from index" "#7" req.Wire.id;
    Alcotest.(check bool) "pristine" true (req.Wire.defects = Wire.Pristine);
    Alcotest.(check bool) "no verify" false req.Wire.config.Wire.verify;
    Alcotest.(check (option int)) "no deadline" None req.Wire.config.Wire.deadline_ms

let expect_parse_error raw fragment =
  match Wire.request_of_line ~index:3 raw with
  | Ok _ -> Alcotest.failf "expected a parse error for %s" raw
  | Error e ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "%S mentions %S" e fragment)
      true
      (contains e fragment && contains e "request 3")

let test_wire_rejects () =
  expect_parse_error "not json at all" "request 3";
  expect_parse_error {|{"schema":"mcx-request/9","pla":"x"}|} "schema";
  expect_parse_error {|{"schema":"mcx-request/1","id":"q"}|} "pla";
  expect_parse_error
    {|{"schema":"mcx-request/1","pla":"x","defects":{"rows":1}}|}
    "defects"

let test_response_field_order () =
  let r =
    {
      (Wire.response ~id:"a" Wire.Ok_mapped) with
      Wire.digest = Some "d";
      rows = Some 2;
      cols = Some 3;
      assignment = Some [| 1; 0 |];
      verified = Some true;
    }
  in
  Alcotest.(check string) "fixed field order"
    {|{"schema":"mcx-response/1","id":"a","status":"ok","digest":"d","rows":2,"cols":3,"assignment":[1,0],"verified":true}|}
    (Wire.response_to_line r);
  Alcotest.(check string) "error shape"
    {|{"schema":"mcx-response/1","id":"b","status":"error","error":"boom"}|}
    (Wire.response_to_line
       { (Wire.response ~id:"b" Wire.Failed) with Wire.error = Some "boom" })

(* --- canonical digests ------------------------------------------------ *)

let digest_of req = (Canonical.resolve req).Canonical.digest

let explicit_defects =
  Wire.Explicit { rows = 5; cols = 10; stuck_open = [ (0, 1) ]; stuck_closed = [ (4, 9) ] }

let test_digest_collision_relabeled () =
  Alcotest.(check string) "variable relabeling coalesces"
    (digest_of (request (`Pla pla_base)))
    (digest_of (request (`Pla pla_relabeled)))

let test_digest_collision_row_permuted () =
  (* Row permutations never move the (physical) defect map, so they
     coalesce even with explicit defects. *)
  Alcotest.(check string) "row permutation coalesces"
    (digest_of (request ~defects:explicit_defects (`Pla pla_base)))
    (digest_of (request ~defects:explicit_defects (`Pla pla_rows_rotated)))

let test_digest_separates_problems () =
  let d0 = digest_of (request (`Pla pla_base)) in
  let other = ".i 3\n.o 2\n11- 01\n1-0 01\n-00 11\n.e" in
  Alcotest.(check bool) "different outputs, different digest" false
    (String.equal d0 (digest_of (request (`Pla other))));
  Alcotest.(check bool) "defects change the digest" false
    (String.equal d0 (digest_of (request ~defects:explicit_defects (`Pla pla_base))));
  let verifying =
    { Wire.default_config with Wire.verify = true }
  in
  Alcotest.(check bool) "verify flag changes the digest" false
    (String.equal d0 (digest_of (request ~config:verifying (`Pla pla_base))));
  (* deadline_ms is a serving-time constraint, not part of the problem *)
  let deadlined =
    { Wire.default_config with Wire.deadline_ms = Some 10_000 }
  in
  Alcotest.(check string) "deadline does not change the digest" d0
    (digest_of (request ~config:deadlined (`Pla pla_base)))

let test_resolve_raises () =
  Alcotest.(check bool) "bad PLA raises Failure" true
    (match Canonical.resolve (request (`Pla ".i oops")) with
    | exception Failure _ -> true
    | _ -> false);
  Alcotest.(check bool) "unknown benchmark raises Failure" true
    (match Canonical.resolve (request (`Benchmark "no-such-cover")) with
    | exception Failure _ -> true
    | _ -> false);
  Alcotest.(check bool) "wrong defect dims raise Invalid_argument" true
    (match
       Canonical.resolve
         (request
            ~defects:
              (Wire.Explicit { rows = 1; cols = 1; stuck_open = []; stuck_closed = [] })
            (`Pla pla_base))
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- the dispatcher --------------------------------------------------- *)

let distinct_batch =
  [
    line (request ~id:"a" (`Pla pla_base));
    line (request ~id:"b" ~defects:explicit_defects (`Pla pla_base));
    line
      (request ~id:"c"
         ~defects:(Wire.Seeded { seed = 7; open_rate = 0.05; closed_rate = 0.0 })
         ~config:{ Wire.default_config with Wire.verify = true }
         (`Benchmark "rd53"));
  ]

let test_coalescing_within_batch () =
  let lines =
    [ line (request ~id:"x" (`Pla pla_base)); line (request ~id:"y" (`Pla pla_relabeled)) ]
  in
  let _, responses, stats = serve_lines lines in
  Alcotest.(check int) "one computed" 1 stats.Serve.misses;
  Alcotest.(check int) "one coalesced" 1 stats.Serve.coalesced;
  Alcotest.(check int) "no hits on a cold cache" 0 stats.Serve.hits;
  match responses with
  | [ ra; rb ] ->
    let digest_of_line l =
      match Json_out.of_string l with
      | Ok json -> Option.bind (Json_out.member "digest" json) Json_out.to_string_opt
      | Error _ -> None
    in
    Alcotest.(check bool) "both answered with the same digest" true
      (Option.is_some (digest_of_line ra) && digest_of_line ra = digest_of_line rb)
  | _ -> Alcotest.fail "expected two responses"

let test_warm_equals_cold () =
  let t = mk_server () in
  let cold, s_cold = Serve.serve_batch t ~label:"cold" distinct_batch in
  let warm, s_warm = Serve.serve_batch t ~label:"warm" distinct_batch in
  Alcotest.(check (list string)) "cached replay is byte-identical" cold warm;
  Alcotest.(check int) "cold batch computes everything" 3 s_cold.Serve.misses;
  Alcotest.(check int) "warm batch hits everything" 3 s_warm.Serve.hits;
  Alcotest.(check int) "warm batch computes nothing" 0 s_warm.Serve.misses;
  (* A fresh server (fresh cache) agrees byte for byte. *)
  let _, fresh, _ = serve_lines distinct_batch in
  Alcotest.(check (list string)) "fresh server agrees" cold fresh

let test_uncacheable_when_capacity_zero () =
  let t = mk_server ~cache_capacity:0 () in
  let cold, _ = Serve.serve_batch t ~label:"b1" distinct_batch in
  let again, s2 = Serve.serve_batch t ~label:"b2" distinct_batch in
  Alcotest.(check int) "no hits without a cache" 0 s2.Serve.hits;
  Alcotest.(check (list string)) "responses identical regardless" cold again

let mixed_batch =
  distinct_batch
  @ [
      "this is not json";
      line (request ~id:"bad-pla" (`Pla ".i oops"));
      line (request ~id:"nope" (`Benchmark "no-such-cover"));
      line
        (request ~id:"late"
           ~config:{ Wire.default_config with Wire.deadline_ms = Some 0 }
           (`Pla pla_base));
    ]

let test_jobs_byte_identity () =
  let _, r1, _ = serve_lines ~jobs:1 mixed_batch in
  let _, r4, _ = serve_lines ~jobs:4 mixed_batch in
  Alcotest.(check (list string)) "MCX_JOBS=1 and 4 agree byte for byte" r1 r4

let status_of_line l =
  match Json_out.of_string l with
  | Ok json ->
    Option.value ~default:"?"
      (Option.bind (Json_out.member "status" json) Json_out.to_string_opt)
  | Error _ -> "?"

let test_partial_failure_protocol () =
  let t, responses, stats = serve_lines mixed_batch in
  Alcotest.(check int) "every request answered" (List.length mixed_batch)
    (List.length responses);
  Alcotest.(check (list string)) "statuses in request order"
    [ "ok"; "ok"; "ok"; "error"; "error"; "error"; "deadline" ]
    (List.map status_of_line responses);
  Alcotest.(check int) "batch error count" 3 stats.Serve.errors;
  Alcotest.(check int) "server error count" 3 (Serve.error_count t);
  Alcotest.(check int) "partial results exit with 4" 4 (Serve.exit_code t);
  List.iter
    (fun l ->
      if String.equal (status_of_line l) "error" then
        match Json_out.of_string l with
        | Ok json ->
          Alcotest.(check bool) "error responses carry a message" true
            (Option.is_some (Json_out.member "error" json))
        | Error e -> Alcotest.failf "unparseable response %s: %s" l e)
    responses

let test_clean_batch_exits_zero () =
  let t, _, stats = serve_lines distinct_batch in
  Alcotest.(check int) "no errors" 0 stats.Serve.errors;
  Alcotest.(check int) "exit 0" 0 (Serve.exit_code t)

let test_stats_json_shape () =
  let t = mk_server () in
  let _ = Serve.serve_batch t ~label:"b1" distinct_batch in
  let _ = Serve.serve_batch t ~label:"b2" distinct_batch in
  let json = Serve.stats_json t in
  let str path = Option.bind path Json_out.to_string_opt in
  let num path = Option.bind path Json_out.to_float_opt in
  Alcotest.(check (option string)) "schema" (Some "mcx-serve-stats/1")
    (str (Json_out.member "schema" json));
  Alcotest.(check (option (float 0.))) "requests" (Some 6.)
    (num (Json_out.member "requests" json));
  let cache = Json_out.member "cache" json in
  Alcotest.(check (option (float 0.))) "cache hits" (Some 3.)
    (num (Option.bind cache (Json_out.member "hits")));
  Alcotest.(check (option (float 0.))) "hit rate over both batches" (Some 0.5)
    (num (Option.bind cache (Json_out.member "hit_rate")));
  match Option.bind (Json_out.member "batches" json) Json_out.to_list_opt with
  | Some [ b1; b2 ] ->
    Alcotest.(check (option string)) "batch labels" (Some "b1")
      (str (Json_out.member "label" b1));
    Alcotest.(check (option (float 0.))) "warm batch hit rate" (Some 1.)
      (num (Json_out.member "hit_rate" b2))
  | _ -> Alcotest.fail "expected two batch rows"

(* --- golden replay ---------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_request_lines path =
  String.split_on_char '\n' (read_file path)
  |> List.filter (fun l -> not (String.equal (String.trim l) ""))

let golden_requests = Filename.concat "golden" "serve_requests.jsonl"
let golden_responses = Filename.concat "golden" "serve_responses.golden"

let serve_golden () =
  let _, responses, _ = serve_lines ~jobs:2 (read_request_lines golden_requests) in
  String.concat "" (List.map (fun l -> l ^ "\n") responses)

let test_golden_replay () =
  let expected = read_file golden_responses in
  let actual = serve_golden () in
  if not (String.equal expected actual) then begin
    write_file "serve_responses.actual" actual;
    Alcotest.failf
      "serve output drifted from %s (actual written to serve_responses.actual); if \
       the change is intentional, regenerate with MCX_GOLDEN_REGEN"
      golden_responses
  end

(* --- access log ------------------------------------------------------- *)

let serve_with_access ?(jobs = 2) lines =
  let acc = ref [] in
  let t =
    Serve.create ~pool:(Pool.create ~jobs ())
      ~on_access:(fun r -> acc := r :: !acc)
      ()
  in
  let responses, _ = Serve.serve_batch t ~label:"access" lines in
  (responses, List.rev !acc)

let digest_of_line l =
  match Json_out.of_string l with
  | Ok json -> Option.bind (Json_out.member "digest" json) Json_out.to_string_opt
  | Error _ -> None

let test_access_log_replay () =
  let lines = read_request_lines golden_requests in
  let responses, records = serve_with_access lines in
  Alcotest.(check int) "one record per request" (List.length lines)
    (List.length records);
  List.iteri
    (fun i (r : Access_log.record) ->
      Alcotest.(check int) "records arrive in index order" i r.Access_log.index)
    records;
  Alcotest.(check (list string)) "cache outcomes"
    [ "miss"; "coalesced"; "miss"; "miss"; "miss"; "miss"; "none"; "none" ]
    (List.map
       (fun (r : Access_log.record) -> Access_log.cache_outcome_to_string r.Access_log.cache)
       records);
  List.iter2
    (fun resp (r : Access_log.record) ->
      Alcotest.(check string) "status matches the response" (status_of_line resp)
        r.Access_log.status;
      Alcotest.(check (option string)) "digest matches the response"
        (digest_of_line resp) r.Access_log.digest;
      Alcotest.(check int) "bytes = rendered length" (String.length resp)
        r.Access_log.bytes)
    responses records;
  (* The deterministic projection of the first record is fully pinned by
     the golden stream — this doubles as the field-order assertion. *)
  let first = List.hd records in
  Alcotest.(check string) "fixed field order"
    (Printf.sprintf
       {|{"schema":"mcx-access/1","index":0,"id":"inline-pristine","source":"pla","digest":"%s","cache":"miss","status":"ok","bytes":%d}|}
       (Option.get first.Access_log.digest)
       (String.length (List.hd responses)))
    (Access_log.to_line ~times:false first);
  (* to_line/of_line is a round trip, durations included. *)
  List.iter
    (fun (r : Access_log.record) ->
      match Access_log.of_line (Access_log.to_line ~times:true r) with
      | Ok r2 -> Alcotest.(check bool) "round trip" true (r = r2)
      | Error e -> Alcotest.failf "re-parse failed: %s" e)
    records;
  (* has_times distinguishes the two projections. *)
  Alcotest.(check bool) "timed record has times" true
    (Access_log.has_times (Access_log.to_json ~times:true first));
  Alcotest.(check bool) "projected record has none" false
    (Access_log.has_times (Access_log.to_json ~times:false first))

let test_access_jobs_identity () =
  let lines = read_request_lines golden_requests in
  let project records =
    List.map (Access_log.to_line ~times:false) records
  in
  let _, r1 = serve_with_access ~jobs:1 lines in
  let _, r4 = serve_with_access ~jobs:4 lines in
  Alcotest.(check (list string)) "deterministic projection agrees across jobs"
    (project r1) (project r4)

(* --- memx report ------------------------------------------------------- *)

let timed_record ~index ~compute_ns ~render_ns =
  {
    Access_log.index;
    id = Printf.sprintf "r%d" index;
    source = "pla";
    digest = Some "d";
    cache = Access_log.Miss;
    status = "ok";
    bytes = 100;
    parse_ns = 1_000L;
    resolve_ns = 2_000L;
    compute_ns;
    render_ns;
  }

let timed_summary ~source ~compute_ns ~render_ns =
  Report.summarize ~source
    (List.init 10 (fun i -> timed_record ~index:i ~compute_ns ~render_ns))
    ~has_times:true

let test_report_summarize () =
  let lines = read_request_lines golden_requests in
  let responses, records = serve_with_access lines in
  let s = Report.summarize ~source:"replay" records ~has_times:false in
  Alcotest.(check int) "records" (List.length lines) s.Report.records;
  Alcotest.(check (list (pair string int))) "cache breakdown"
    [ ("coalesced", 1); ("miss", 5); ("none", 2) ]
    s.Report.by_cache;
  Alcotest.(check int) "bytes total"
    (List.fold_left (fun n l -> n + String.length l) 0 responses)
    s.Report.bytes_total;
  Alcotest.(check int) "error count in by_status" 2
    (Option.value ~default:0 (List.assoc_opt "error" s.Report.by_status));
  Alcotest.(check int) "untimed summary renders one table" 1
    (List.length (Report.access_tables s));
  let timed = timed_summary ~source:"t" ~compute_ns:10_000_000L ~render_ns:500L in
  Alcotest.(check int) "timed summary adds the latency table" 2
    (List.length (Report.access_tables timed));
  let compute =
    List.find (fun (st : Report.stage_stat) -> st.Report.stage = "compute")
      timed.Report.stages
  in
  Alcotest.(check int64) "stage total" 100_000_000L compute.Report.total_ns;
  Alcotest.(check int64) "stage mean" 10_000_000L compute.Report.mean_ns

let test_report_diff () =
  let old_timed = timed_summary ~source:"old" ~compute_ns:10_000_000L ~render_ns:500L in
  Alcotest.(check int) "identical runs produce no findings" 0
    (List.length (Report.diff old_timed old_timed));
  (* 10x slower compute (total 1s, far above the noise floor) regresses;
     render also grew 10x but stays under min_total_ns and is ignored. *)
  let new_timed =
    timed_summary ~source:"new" ~compute_ns:100_000_000L ~render_ns:5_000L
  in
  (match Report.diff old_timed new_timed with
  | [ f ] ->
    Alcotest.(check bool) "regression severity" true (f.Report.severity = `Regression);
    Alcotest.(check bool) "names the compute stage" true
      (let what = f.Report.what in
       let n = String.length "compute" in
       let rec go i =
         i + n <= String.length what && (String.sub what i n = "compute" || go (i + 1))
       in
       go 0)
  | fs -> Alcotest.failf "expected exactly one regression, got %d findings" (List.length fs));
  Alcotest.(check int) "a looser threshold accepts the 10x" 0
    (List.length (Report.diff ~threshold:20.0 old_timed new_timed));
  (* Deterministic-field drift is a mismatch regardless of timing. *)
  let lines = read_request_lines golden_requests in
  let _, records = serve_with_access lines in
  let full = Report.summarize ~source:"full" records ~has_times:false in
  let truncated =
    Report.summarize ~source:"cut"
      (List.filteri (fun i _ -> i < 5) records)
      ~has_times:false
  in
  let findings = Report.diff full truncated in
  Alcotest.(check bool) "count drift is a mismatch" true
    (List.exists (fun (f : Report.finding) -> f.Report.severity = `Mismatch) findings);
  Alcotest.(check bool) "no latency findings without timing" true
    (List.for_all (fun (f : Report.finding) -> f.Report.severity = `Mismatch) findings)

let test_report_load_access () =
  let lines = read_request_lines golden_requests in
  let _, records = serve_with_access lines in
  let path = Filename.temp_file "mcx_access" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path
        (String.concat ""
           (List.map (fun r -> Access_log.to_line ~times:true r ^ "\n") records)
        ^ "\n");
      (match Report.load_access path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok s ->
        Alcotest.(check int) "all records loaded" (List.length records) s.Report.records;
        Alcotest.(check bool) "timing detected" true s.Report.has_times);
      write_file path
        (Access_log.to_line ~times:true (List.hd records) ^ "\nnot json\n");
      match Report.load_access path with
      | Ok _ -> Alcotest.fail "expected a load error"
      | Error e ->
        let contains needle =
          let n = String.length needle and h = String.length e in
          let rec go i = i + n <= h && (String.sub e i n = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "error cites the line number" true (contains ":2:"))

let () =
  match Mcx_util.Config.golden_regen () with
  | Some dir ->
    let path = Filename.concat dir "serve_responses.golden" in
    write_file path (serve_golden ());
    Printf.printf "wrote %s\n%!" path
  | None ->
    Alcotest.run "service"
      [
        ( "wire",
          [
            Alcotest.test_case "request round-trip" `Quick test_wire_round_trip;
            Alcotest.test_case "defaults" `Quick test_wire_defaults;
            Alcotest.test_case "malformed requests" `Quick test_wire_rejects;
            Alcotest.test_case "response field order" `Quick test_response_field_order;
          ] );
        ( "canonical",
          [
            Alcotest.test_case "relabeled vars collide" `Quick
              test_digest_collision_relabeled;
            Alcotest.test_case "permuted rows collide" `Quick
              test_digest_collision_row_permuted;
            Alcotest.test_case "distinct problems separate" `Quick
              test_digest_separates_problems;
            Alcotest.test_case "invalid requests raise" `Quick test_resolve_raises;
          ] );
        ( "dispatch",
          [
            Alcotest.test_case "within-batch coalescing" `Quick
              test_coalescing_within_batch;
            Alcotest.test_case "warm = cold" `Quick test_warm_equals_cold;
            Alcotest.test_case "capacity-0 cache" `Quick
              test_uncacheable_when_capacity_zero;
            Alcotest.test_case "jobs 1 = jobs 4" `Quick test_jobs_byte_identity;
            Alcotest.test_case "partial failure" `Quick test_partial_failure_protocol;
            Alcotest.test_case "clean exit" `Quick test_clean_batch_exits_zero;
            Alcotest.test_case "stats document" `Quick test_stats_json_shape;
          ] );
        ("golden", [ Alcotest.test_case "request replay" `Quick test_golden_replay ]);
        ( "access",
          [
            Alcotest.test_case "structured replay" `Quick test_access_log_replay;
            Alcotest.test_case "jobs 1 = jobs 4 projection" `Quick
              test_access_jobs_identity;
          ] );
        ( "report",
          [
            Alcotest.test_case "summarize" `Quick test_report_summarize;
            Alcotest.test_case "diff" `Quick test_report_diff;
            Alcotest.test_case "load access log" `Quick test_report_load_access;
          ] );
      ]
