open Mcx_util

(* Telemetry state is process-global; every test starts from a clean
   slate.  Alcotest runs cases sequentially, so this does not race. *)
let fresh () =
  Telemetry.disable ();
  Telemetry.reset ()

(* --- Json_out ------------------------------------------------------- *)

let js v = Json_out.to_string v

let test_json_scalars () =
  Alcotest.(check string) "null" "null" (js Json_out.Null);
  Alcotest.(check string) "true" "true" (js (Json_out.Bool true));
  Alcotest.(check string) "false" "false" (js (Json_out.Bool false));
  Alcotest.(check string) "int" "-42" (js (Json_out.Int (-42)));
  Alcotest.(check string) "str" "\"hi\"" (js (Json_out.Str "hi"))

let test_json_escaping () =
  Alcotest.(check string) "quote" {|"a\"b"|} (js (Json_out.Str {|a"b|}));
  Alcotest.(check string) "backslash" {|"a\\b"|} (js (Json_out.Str {|a\b|}));
  Alcotest.(check string) "newline tab cr" "\"\\n\\t\\r\"" (js (Json_out.Str "\n\t\r"));
  Alcotest.(check string) "backspace formfeed" "\"\\b\\f\"" (js (Json_out.Str "\b\012"));
  Alcotest.(check string) "other control chars" "\"\\u0000\\u001f\""
    (js (Json_out.Str "\000\031"));
  (* bytes >= 0x80 pass through untouched (UTF-8 payloads stay valid) *)
  Alcotest.(check string) "high bytes pass through" "\"\xc3\xa9\""
    (js (Json_out.Str "\xc3\xa9"))

let test_json_non_finite_floats () =
  Alcotest.(check string) "nan is null" "null" (js (Json_out.Float Float.nan));
  Alcotest.(check string) "inf is null" "null" (js (Json_out.Float Float.infinity));
  Alcotest.(check string) "-inf is null" "null" (js (Json_out.Float Float.neg_infinity))

let test_json_float_round_trip () =
  List.iter
    (fun f ->
      let printed = js (Json_out.Float f) in
      Alcotest.(check (float 0.)) (Printf.sprintf "%h survives" f) f
        (float_of_string printed))
    [ 0.; 1.; -1.5; 0.1; 1. /. 3.; Float.pi; 1e-308; 1.7976931348623157e308; 123.456 ];
  (* the short decimals print short, not with 17-digit noise *)
  Alcotest.(check string) "0.1 prints short" "0.1" (js (Json_out.Float 0.1))

let test_json_nesting () =
  let v =
    Json_out.Obj
      [
        ("a", Json_out.List [ Json_out.Int 1; Json_out.Null ]);
        ("b", Json_out.Obj [ ("c", Json_out.Str "d") ]);
        ("empty", Json_out.List []);
      ]
  in
  Alcotest.(check string) "compact nesting"
    {|{"a":[1,null],"b":{"c":"d"},"empty":[]}|} (js v)

(* --- Json_out parsing hardening -------------------------------------- *)

let expect_parse_error input fragment =
  match Json_out.of_string input with
  | Ok v -> Alcotest.failf "expected a parse error, got %s" (js v)
  | Error e ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) (Printf.sprintf "%S mentions %S" e fragment) true
      (contains e fragment)

let nested_brackets depth =
  String.concat "" (List.init depth (fun _ -> "["))
  ^ "null"
  ^ String.concat "" (List.init depth (fun _ -> "]"))

let test_json_depth_cap () =
  (* Exactly max_depth containers parse; one more is an error, not a
     stack overflow. *)
  (match Json_out.of_string (nested_brackets Json_out.max_depth) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "max_depth should parse: %s" e);
  expect_parse_error (nested_brackets (Json_out.max_depth + 1)) "nesting too deep";
  expect_parse_error (nested_brackets 100_000) "nesting too deep";
  (* Objects count against the same limit. *)
  let deep_objs =
    String.concat "" (List.init (Json_out.max_depth + 1) (fun _ -> {|{"k":|}))
    ^ "null"
    ^ String.make (Json_out.max_depth + 1) '}'
  in
  expect_parse_error deep_objs "nesting too deep"

let test_json_surrogates () =
  (* A valid surrogate pair combines into one code point, re-encoded as
     4-byte UTF-8 (U+1F600). *)
  (match Json_out.of_string "\"\\ud83d\\ude00\"" with
  | Ok (Json_out.Str s) -> Alcotest.(check string) "astral plane" "\xf0\x9f\x98\x80" s
  | Ok v -> Alcotest.failf "expected a string, got %s" (js v)
  | Error e -> Alcotest.failf "surrogate pair should parse: %s" e);
  expect_parse_error {|"\ud800"|} "lone high surrogate";
  expect_parse_error {|"\ud800x"|} "lone high surrogate";
  expect_parse_error {|"\ud800A"|} "lone high surrogate";
  expect_parse_error {|"\udc00"|} "lone low surrogate";
  (* BMP escapes still work, including the highest non-surrogate ones. *)
  match Json_out.of_string "\"\\u0041\\uffff\"" with
  | Ok (Json_out.Str s) -> Alcotest.(check string) "bmp escapes" "A\xef\xbf\xbf" s
  | Ok v -> Alcotest.failf "expected a string, got %s" (js v)
  | Error e -> Alcotest.failf "BMP escapes should parse: %s" e

let test_json_trailing_garbage () =
  expect_parse_error "null x" "trailing";
  expect_parse_error "1 2" "trailing";
  expect_parse_error {|{"a":1} []|} "trailing";
  (* Surrounding whitespace alone is fine. *)
  match Json_out.of_string "  [1, 2]\t\n" with
  | Ok v -> Alcotest.(check string) "whitespace tolerated" "[1,2]" (js v)
  | Error e -> Alcotest.failf "whitespace should be fine: %s" e

let test_json_parse_round_trip () =
  (* of_string inverts to_string on a representative emitted tree. *)
  let v =
    Json_out.Obj
      [
        ("s", Json_out.Str "a\"b\\c\n\xc3\xa9");
        ("xs", Json_out.List [ Json_out.Int (-3); Json_out.Float 0.25; Json_out.Null ]);
        ("b", Json_out.Bool false);
        ("nested", Json_out.Obj [ ("empty", Json_out.List []) ]);
      ]
  in
  match Json_out.of_string (js v) with
  | Ok parsed -> Alcotest.(check string) "round trip" (js v) (js parsed)
  | Error e -> Alcotest.failf "emitted JSON must parse: %s" e

(* --- histogram geometry --------------------------------------------- *)

let test_bucket_boundaries () =
  Alcotest.(check int) "0ns" 0 (Telemetry.bucket_of_ns 0L);
  Alcotest.(check int) "1ns" 0 (Telemetry.bucket_of_ns 1L);
  Alcotest.(check int) "2ns" 1 (Telemetry.bucket_of_ns 2L);
  Alcotest.(check int) "3ns" 1 (Telemetry.bucket_of_ns 3L);
  Alcotest.(check int) "4ns" 2 (Telemetry.bucket_of_ns 4L);
  Alcotest.(check int) "1024ns" 10 (Telemetry.bucket_of_ns 1024L);
  (* every bucket's inclusive bounds map back to the bucket *)
  for i = 0 to 61 do
    let lo, hi = Telemetry.bucket_bounds i in
    Alcotest.(check int) (Printf.sprintf "lo of %d" i) i (Telemetry.bucket_of_ns lo);
    Alcotest.(check int)
      (Printf.sprintf "hi-1 of %d" i)
      i
      (Telemetry.bucket_of_ns (Int64.sub hi 1L))
  done;
  let lo, _ = Telemetry.bucket_bounds 1 in
  Alcotest.(check int64) "bucket 1 starts at 2" 2L lo;
  let _, hi = Telemetry.bucket_bounds (Telemetry.n_buckets - 1) in
  Alcotest.(check int64) "last bucket is open-ended" Int64.max_int hi;
  Alcotest.check_raises "negative bucket" (Invalid_argument "Telemetry.bucket_bounds")
    (fun () -> ignore (Telemetry.bucket_bounds (-1)))

let stat_with_buckets pairs =
  let buckets = Array.make Telemetry.n_buckets 0 in
  List.iter (fun (i, n) -> buckets.(i) <- n) pairs;
  let calls = List.fold_left (fun acc (_, n) -> acc + n) 0 pairs in
  { Telemetry.Report.name = "t"; calls; total_ns = 0L; max_ns = 0L; buckets }

let test_percentiles () =
  (* 100 calls in [8,16) plus one outlier in [512,1024) *)
  let stat = stat_with_buckets [ (3, 100); (9, 1) ] in
  Alcotest.(check int64) "p50 upper edge of bucket 3" 15L
    (Telemetry.Report.percentile_ns stat ~p:0.50);
  Alcotest.(check int64) "p99 still bucket 3" 15L
    (Telemetry.Report.percentile_ns stat ~p:0.99);
  Alcotest.(check int64) "p100 reaches the outlier" 1023L
    (Telemetry.Report.percentile_ns stat ~p:1.0);
  let empty = stat_with_buckets [] in
  Alcotest.(check int64) "no calls" 0L (Telemetry.Report.percentile_ns empty ~p:0.5);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Telemetry.Report.percentile_of_buckets") (fun () ->
      ignore (Telemetry.Report.percentile_ns stat ~p:0.))

(* --- spans and counters --------------------------------------------- *)

let find_span report name =
  List.find_opt
    (fun s -> String.equal s.Telemetry.Report.name name)
    (Telemetry.Report.spans report)

let test_span_nesting () =
  fresh ();
  Telemetry.enable ();
  let v =
    Telemetry.span "t.outer" (fun () ->
        Telemetry.span "t.inner" (fun () -> 2 + 2)
        + Telemetry.span "t.inner" (fun () -> 1))
  in
  Alcotest.(check int) "span is transparent" 5 v;
  let report = Telemetry.snapshot () in
  let calls name =
    match find_span report name with Some s -> s.Telemetry.Report.calls | None -> 0
  in
  Alcotest.(check int) "outer once" 1 (calls "t.outer");
  Alcotest.(check int) "inner twice" 2 (calls "t.inner");
  (match find_span report "t.inner" with
  | Some s ->
    Alcotest.(check int) "histogram holds every call" 2
      (Array.fold_left ( + ) 0 s.Telemetry.Report.buckets);
    Alcotest.(check bool) "total >= max" true
      (Int64.compare s.Telemetry.Report.total_ns s.Telemetry.Report.max_ns >= 0)
  | None -> Alcotest.fail "inner span missing")

let test_span_exception_safety () =
  fresh ();
  Telemetry.enable ();
  (try Telemetry.span "t.raises" (fun () -> raise Exit) with Exit -> ());
  let report = Telemetry.snapshot () in
  (match find_span report "t.raises" with
  | Some s -> Alcotest.(check int) "recorded despite raise" 1 s.Telemetry.Report.calls
  | None -> Alcotest.fail "span lost on exception");
  (* the stack unwound: a follow-up balanced close still works *)
  Telemetry.begin_span "t.after";
  Telemetry.end_span "t.after"

let test_unbalanced_close_detection () =
  fresh ();
  Telemetry.enable ();
  Alcotest.check_raises "close with nothing open"
    (Invalid_argument "Telemetry.end_span: \"t.none\" closed but no span is open")
    (fun () -> Telemetry.end_span "t.none");
  Telemetry.begin_span "t.a";
  Alcotest.check_raises "close wrong span"
    (Invalid_argument "Telemetry.end_span: \"t.b\" closed while \"t.a\" is innermost")
    (fun () -> Telemetry.end_span "t.b");
  (* the mis-close left the frame in place; the matching close succeeds *)
  Telemetry.end_span "t.a"

let test_disabled_records_nothing () =
  fresh ();
  Alcotest.(check bool) "disabled" false (Telemetry.enabled ());
  let v = Telemetry.span "t.off" (fun () -> 7) in
  Alcotest.(check int) "span passes through" 7 v;
  Telemetry.count "t.off_counter";
  Telemetry.observe_ns "t.off_obs" 5L;
  let report = Telemetry.snapshot () in
  Alcotest.(check bool) "no span" true (find_span report "t.off" = None);
  Alcotest.(check bool) "no counter" true
    (List.assoc_opt "t.off_counter" (Telemetry.Report.counters report) = None)

let test_counters_and_observe () =
  fresh ();
  Telemetry.enable ();
  Telemetry.count "t.c";
  Telemetry.count ~n:41 "t.c";
  Telemetry.observe_ns "t.obs" 10L;
  Telemetry.observe_ns "t.obs" (-5L);
  (* clamps to 0 *)
  let report = Telemetry.snapshot () in
  Alcotest.(check (option int)) "counter sums" (Some 42)
    (List.assoc_opt "t.c" (Telemetry.Report.counters report));
  match find_span report "t.obs" with
  | Some s ->
    Alcotest.(check int) "observe counts calls" 2 s.Telemetry.Report.calls;
    Alcotest.(check int64) "negative clamped" 10L s.Telemetry.Report.total_ns
  | None -> Alcotest.fail "observe_ns aggregate missing"

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

(* --- deterministic merge across job counts --------------------------- *)

(* The same per-trial instrumentation, fanned out over [jobs] domains; the
   deterministic projection of the summary must not depend on [jobs]. *)
let run_workload jobs =
  fresh ();
  Telemetry.enable ();
  let pool = Pool.create ~jobs () in
  let total =
    Pool.map_reduce pool ~n:64
      ~map:(fun i ->
        Telemetry.span "t.trial" (fun () ->
            Telemetry.count ~n:(i mod 3) "t.units";
            Telemetry.count "t.trials";
            i))
      ~init:0 ~fold:( + )
  in
  Pool.shutdown pool;
  let report = Telemetry.snapshot () in
  let summary = Texttable.render (Telemetry.Report.summary_table ~times:false report) in
  Telemetry.disable ();
  (total, summary)

let test_deterministic_merge () =
  let total1, summary1 = run_workload 1 in
  let total4, summary4 = run_workload 4 in
  Alcotest.(check int) "fold result identical" total1 total4;
  Alcotest.(check string) "summary identical at 1 vs 4 jobs" summary1 summary4;
  Alcotest.(check bool) "summary names the span" true
    (contains ~affix:"t.trial" summary1);
  Alcotest.(check bool) "counter total is jobs-independent" true
    (contains ~affix:"64" summary1)

let test_report_merge_order_independent () =
  fresh ();
  Telemetry.enable ();
  Telemetry.span "t.m" (fun () -> ());
  Telemetry.count ~n:3 "t.mc";
  let a = Telemetry.snapshot () in
  Telemetry.reset ();
  Telemetry.span "t.m" (fun () -> ());
  Telemetry.span "t.other" (fun () -> ());
  Telemetry.count ~n:4 "t.mc";
  let b = Telemetry.snapshot () in
  Telemetry.disable ();
  let render r = Texttable.render (Telemetry.Report.summary_table ~times:false r) in
  Alcotest.(check string) "merge commutes"
    (render (Telemetry.Report.merge a b))
    (render (Telemetry.Report.merge b a));
  let merged = Telemetry.Report.merge a b in
  Alcotest.(check (option int)) "counters sum" (Some 7)
    (List.assoc_opt "t.mc" (Telemetry.Report.counters merged));
  match find_span merged "t.m" with
  | Some s -> Alcotest.(check int) "span calls sum" 2 s.Telemetry.Report.calls
  | None -> Alcotest.fail "merged span missing"

(* --- chrome trace export -------------------------------------------- *)

let test_chrome_trace_shape () =
  fresh ();
  Telemetry.enable ~events:true ();
  Telemetry.span "t.traced" (fun () -> Telemetry.span "t.traced_inner" (fun () -> ()));
  Telemetry.count ~n:9 "t.traced_count";
  let report = Telemetry.snapshot () in
  Telemetry.disable ();
  let json = Json_out.to_string (Telemetry.Report.chrome_trace report) in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (Printf.sprintf "trace contains %s" affix) true
        (contains ~affix json))
    [
      {|"traceEvents":[|};
      {|"schema":"mcx-trace/1"|};
      {|"ph":"X"|};
      {|"name":"t.traced"|};
      {|"name":"t.traced_inner"|};
      {|"name":"process_name"|};
      {|"t.traced_count":9|};
      {|"dropped_events":0|};
    ]

let () =
  Alcotest.run "telemetry"
    [
      ( "json_out",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "non-finite floats" `Quick test_json_non_finite_floats;
          Alcotest.test_case "float round trip" `Quick test_json_float_round_trip;
          Alcotest.test_case "nesting" `Quick test_json_nesting;
        ] );
      ( "json_in",
        [
          Alcotest.test_case "depth cap" `Quick test_json_depth_cap;
          Alcotest.test_case "surrogates" `Quick test_json_surrogates;
          Alcotest.test_case "trailing garbage" `Quick test_json_trailing_garbage;
          Alcotest.test_case "parse round trip" `Quick test_json_parse_round_trip;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
          Alcotest.test_case "unbalanced close" `Quick test_unbalanced_close_detection;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_records_nothing;
          Alcotest.test_case "counters and observe_ns" `Quick test_counters_and_observe;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "summary identical at 1 vs 4 jobs" `Quick
            test_deterministic_merge;
          Alcotest.test_case "merge is order-independent" `Quick
            test_report_merge_order_independent;
        ] );
      ( "export",
        [ Alcotest.test_case "chrome trace shape" `Quick test_chrome_trace_shape ] );
    ]
