(* Config registry tests: typed accessors with provenance, eager flag
   validation, malformed-knob errors, the canonical mcx-config/1
   snapshot (field order, digest stability, the semantic-only
   projection's job-count invariance), and the checkpoint journal's
   config-digest resume refusal with its --force-resume escape hatch.

   Knobs are process-global, so every test restores the environment it
   touched: [Unix.putenv name ""] clears a knob (empty-is-unset) and
   [Config.reset_flags] drops flag overrides. *)

open Mcx_util

let clear name = Unix.putenv name ""

let with_env name value f =
  Unix.putenv name value;
  Fun.protect ~finally:(fun () -> clear name) f

let with_flag name value f =
  Config.set_flag name value;
  Fun.protect ~finally:(fun () -> Config.reset_flags ()) f

(* --- accessors and provenance ----------------------------------------- *)

let prov_of name =
  match List.find_opt (fun k -> k.Config.name = name) (Config.knobs ()) with
  | Some k -> Config.provenance_name k.Config.prov
  | None -> Alcotest.failf "unregistered knob %s" name

let test_defaults () =
  Alcotest.(check (option int)) "jobs unset" None (Config.jobs ());
  Alcotest.(check int) "retries default" 2 (Config.trial_retries ());
  Alcotest.(check (option string)) "checkpoint unset" None (Config.checkpoint_dir ());
  Alcotest.(check (float 0.)) "fault rate default" 0. (Config.fault_rate ());
  Alcotest.(check bool) "times default" true (Config.trace_times ());
  Alcotest.(check int) "cache default" 512 (Config.cache_size ());
  Alcotest.(check (option int)) "samples unset" None (Config.samples ());
  Alcotest.(check bool) "force-resume default" false (Config.force_resume ());
  Alcotest.(check string) "provenance default" "default" (prov_of "MCX_JOBS")

let test_env_provenance () =
  with_env "MCX_JOBS" "3" (fun () ->
      Alcotest.(check (option int)) "env value" (Some 3) (Config.jobs ());
      Alcotest.(check string) "provenance env" "env" (prov_of "MCX_JOBS"));
  Alcotest.(check (option int)) "cleared = unset" None (Config.jobs ());
  with_env "MCX_TRIAL_RETRIES" " 5 " (fun () ->
      Alcotest.(check int) "whitespace trimmed" 5 (Config.trial_retries ()));
  with_env "MCX_TRIAL_RETRIES" "99" (fun () ->
      Alcotest.(check int) "retry cap visible in the value" 16 (Config.trial_retries ()))

let test_flag_overrides_env () =
  with_env "MCX_CACHE_SIZE" "100" (fun () ->
      with_flag "MCX_CACHE_SIZE" "7" (fun () ->
          Alcotest.(check int) "flag wins" 7 (Config.cache_size ());
          Alcotest.(check string) "provenance flag" "flag" (prov_of "MCX_CACHE_SIZE"));
      Alcotest.(check int) "reset restores env" 100 (Config.cache_size ());
      Alcotest.(check string) "provenance env again" "env" (prov_of "MCX_CACHE_SIZE"))

let test_jobs_resolved_clamps () =
  with_env "MCX_JOBS" "1" (fun () ->
      Alcotest.(check int) "resolved = env" 1 (Config.jobs_resolved ()));
  with_env "MCX_JOBS" "4096" (fun () ->
      Alcotest.(check int) "clamped to 64" 64 (Config.jobs_resolved ()));
  Alcotest.(check bool) "unset resolves to >= 1" true (Config.jobs_resolved () >= 1)

(* --- validation -------------------------------------------------------- *)

let check_invalid name what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid for %s" name what
  | exception Config.Invalid { knob; _ } ->
    Alcotest.(check string) (name ^ " names the knob") name knob

let test_malformed_values () =
  with_env "MCX_JOBS" "abc" (fun () ->
      check_invalid "MCX_JOBS" "abc" Config.jobs;
      check_invalid "MCX_JOBS" "abc (snapshot)" (fun () -> Config.snapshot ()));
  with_env "MCX_JOBS" "0" (fun () -> check_invalid "MCX_JOBS" "0" Config.jobs);
  with_env "MCX_FAULT_RATE" "1.5" (fun () ->
      check_invalid "MCX_FAULT_RATE" "1.5" Config.fault_rate);
  with_env "MCX_CACHE_SIZE" "-3" (fun () ->
      check_invalid "MCX_CACHE_SIZE" "-3" Config.cache_size);
  with_env "MCX_TRACE_TIMES" "maybe" (fun () ->
      check_invalid "MCX_TRACE_TIMES" "maybe" Config.trace_times)

let test_invalid_message () =
  with_env "MCX_FAULT_RATE" "1.5" (fun () ->
      match Config.fault_rate () with
      | _ -> Alcotest.fail "expected Invalid"
      | exception (Config.Invalid _ as e) ->
        Alcotest.(check string)
          "printer names knob, value and expected form"
          "invalid MCX_FAULT_RATE=\"1.5\" (expected a float in [0, 1])"
          (Printexc.to_string e))

let test_set_flag_validates_eagerly () =
  check_invalid "MCX_JOBS" "flag abc" (fun () -> Config.set_flag "MCX_JOBS" "abc");
  Alcotest.check_raises "unregistered name rejected"
    (Invalid_argument "Config: unregistered knob \"MCX_TYPO_KNOB\"") (fun () ->
      Config.set_flag "MCX_TYPO_KNOB" "1")

let test_errors_sweep () =
  with_env "MCX_JOBS" "abc" (fun () ->
      with_env "MCX_FAULT_RATE" "1.5" (fun () ->
          with_env "MCX_CACHE_SIZE" "-3" (fun () ->
              let errs = Config.errors () in
              Alcotest.(check (list string))
                "every malformed knob reported, in declaration order"
                [ "MCX_JOBS"; "MCX_FAULT_RATE"; "MCX_CACHE_SIZE" ]
                (List.map (fun e -> e.Config.knob) errs);
              Alcotest.(check string) "value carried" "abc"
                (List.nth errs 0).Config.value)));
  Alcotest.(check int) "clean env has no errors" 0 (List.length (Config.errors ()))

let test_unknown_vars () =
  Unix.putenv "MCX_TYPO_KNOB" "1";
  Fun.protect
    ~finally:(fun () -> clear "MCX_TYPO_KNOB")
    (fun () ->
      Alcotest.(check bool) "typo detected" true
        (List.mem_assoc "MCX_TYPO_KNOB" (Config.unknown ())));
  Alcotest.(check bool) "cleared typo forgotten" false
    (List.mem_assoc "MCX_TYPO_KNOB" (Config.unknown ()));
  Alcotest.(check bool) "registered knobs are not unknown" false
    (List.mem_assoc "MCX_JOBS" (Config.unknown ()))

(* --- snapshot and digest ----------------------------------------------- *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let test_snapshot_shape () =
  let s = Json_out.to_string (Config.snapshot ()) in
  Alcotest.(check bool) "schema then digest lead the document" true
    (starts_with ~prefix:"{\"schema\":\"mcx-config/1\",\"digest\":\"" s);
  let json = Config.snapshot () in
  (match Json_out.member "knobs" json with
  | Some (Json_out.List knobs) ->
    Alcotest.(check int) "all knobs present" 10 (List.length knobs);
    let names =
      List.map
        (fun k ->
          match Option.bind (Json_out.member "name" k) Json_out.to_string_opt with
          | Some n -> n
          | None -> Alcotest.fail "knob entry without a name")
        knobs
    in
    Alcotest.(check (list string))
      "declaration order is the document order"
      [
        "MCX_JOBS"; "MCX_TRIAL_RETRIES"; "MCX_CHECKPOINT"; "MCX_FAULT_RATE";
        "MCX_TRACE"; "MCX_TRACE_TIMES"; "MCX_CACHE_SIZE"; "MCX_SAMPLES";
        "MCX_GOLDEN_REGEN"; "MCX_FORCE_RESUME";
      ]
      names
  | _ -> Alcotest.fail "snapshot has no knobs list");
  match Option.bind (Json_out.member "digest" json) Json_out.to_string_opt with
  | Some d -> Alcotest.(check string) "embedded digest = digest ()" (Config.digest ()) d
  | None -> Alcotest.fail "snapshot has no digest"

let test_digest_stability () =
  Alcotest.(check string) "digest is deterministic" (Config.digest ()) (Config.digest ());
  let base = Config.digest () in
  with_env "MCX_SAMPLES" "7" (fun () ->
      Alcotest.(check bool) "semantic knob changes the full digest" true
        (Config.digest () <> base);
      (* Same value via flag instead of env: provenance is excluded. *)
      let via_env = Config.digest () in
      clear "MCX_SAMPLES";
      with_flag "MCX_SAMPLES" "7" (fun () ->
          Alcotest.(check string) "flag vs env digest identically" via_env
            (Config.digest ())))

let test_semantic_projection_job_invariant () =
  let at_jobs n f = with_env "MCX_JOBS" (string_of_int n) f in
  let sem1 = at_jobs 1 (fun () -> Json_out.to_string (Config.snapshot ~semantic_only:true ())) in
  let sem4 = at_jobs 4 (fun () -> Json_out.to_string (Config.snapshot ~semantic_only:true ())) in
  Alcotest.(check string) "semantic snapshot byte-identical at jobs 1 vs 4" sem1 sem4;
  let full1 = at_jobs 1 (fun () -> Config.digest ()) in
  let full4 = at_jobs 4 (fun () -> Config.digest ()) in
  Alcotest.(check bool) "full digest distinguishes job counts" true (full1 <> full4);
  (match Json_out.of_string sem1 with
  | Ok json -> (
    match Json_out.member "knobs" json with
    | Some (Json_out.List knobs) ->
      Alcotest.(check int) "semantic projection keeps 3 knobs" 3 (List.length knobs)
    | _ -> Alcotest.fail "semantic snapshot has no knobs list")
  | Error e -> Alcotest.failf "semantic snapshot does not parse: %s" e)

(* --- journal resume refusal -------------------------------------------- *)

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcx-config-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  Sys.mkdir dir 0o755;
  dir

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Copy a journal into a directory the (per-process, per-dir memoized)
   registry has never seen — the moral equivalent of a process restart. *)
let copied_journal src_dir =
  let dst = fresh_dir () in
  let oc = open_out_bin (Filename.concat dst "journal.jsonl") in
  output_string oc (read_file (Filename.concat src_dir "journal.jsonl"));
  close_out oc;
  dst

let run_sweep ~dir ~calls =
  let ckpt = Checkpoint.start ~dir ~experiment:"cfg" ~seed:3 () in
  Checkpoint.map ckpt
    ~pool:(Pool.create ~jobs:1 ())
    ~section:"s n=4" ~n:4 ~codec:Checkpoint.Codec.int
    (fun i ->
      incr calls;
      i * 3)

let test_resume_refuses_on_digest_mismatch () =
  Checkpoint.reset ();
  let dir = fresh_dir () in
  let calls = ref 0 in
  let r1 = run_sweep ~dir ~calls in
  Alcotest.(check int) "first run computes" 4 !calls;
  (* Same config: the copied journal replays without complaint. *)
  let calls2 = ref 0 in
  let r2 = run_sweep ~dir:(copied_journal dir) ~calls:calls2 in
  Alcotest.(check int) "matched config replays" 0 !calls2;
  Alcotest.(check (array (option int))) "replay identical" r1 r2;
  (* A different semantic knob (MCX_SAMPLES is not read by the sweep, so
     nothing but the digest changes): resume must refuse. *)
  with_env "MCX_SAMPLES" "7" (fun () ->
      let dir2 = copied_journal dir in
      match run_sweep ~dir:dir2 ~calls:(ref 0) with
      | _ -> Alcotest.fail "expected Config_mismatch"
      | exception Checkpoint.Config_mismatch { path; journal_digest; current_digest } ->
        Alcotest.(check bool) "cites the journal path" true
          (path = Filename.concat dir2 "journal.jsonl");
        Alcotest.(check bool) "digests differ" true (journal_digest <> current_digest);
        Alcotest.(check string) "current digest is ours" (Config.digest ())
          current_digest)

let test_force_resume_overrides_mismatch () =
  Checkpoint.reset ();
  let dir = fresh_dir () in
  let calls = ref 0 in
  let r1 = run_sweep ~dir ~calls in
  with_env "MCX_SAMPLES" "7" (fun () ->
      with_env "MCX_FORCE_RESUME" "1" (fun () ->
          let calls2 = ref 0 in
          let r2 = run_sweep ~dir:(copied_journal dir) ~calls:calls2 in
          Alcotest.(check int) "forced resume replays everything" 0 !calls2;
          Alcotest.(check (array (option int))) "forced replay identical" r1 r2))

let test_mismatch_printer () =
  let e =
    Checkpoint.Config_mismatch
      { path = "d/journal.jsonl"; journal_digest = "aaa"; current_digest = "bbb" }
  in
  let s = Printexc.to_string e in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle -> Alcotest.(check bool) ("mentions " ^ needle) true (contains needle))
    [ "d/journal.jsonl"; "aaa"; "bbb"; "--force-resume"; "memx config" ]

(* --- property: snapshot round-trips through Json_out ------------------- *)

let knob_value_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun n -> ("MCX_JOBS", string_of_int n)) (int_range 1 64);
        map (fun n -> ("MCX_TRIAL_RETRIES", string_of_int n)) (int_range 0 16);
        map (fun r -> ("MCX_FAULT_RATE", Printf.sprintf "%.3f" r)) (float_bound_inclusive 1.);
        map (fun b -> ("MCX_TRACE_TIMES", if b then "true" else "0")) bool;
        map (fun n -> ("MCX_CACHE_SIZE", string_of_int n)) (int_range 0 10_000);
        map (fun n -> ("MCX_SAMPLES", string_of_int n)) (int_range 1 100_000);
      ])

let prop_snapshot_round_trip =
  QCheck2.Test.make ~name:"snapshot round-trips through Json_out" ~count:200
    QCheck2.Gen.(list_size (int_range 0 6) knob_value_gen)
    (fun settings ->
      Fun.protect
        ~finally:(fun () -> Config.reset_flags ())
        (fun () ->
          List.iter (fun (name, value) -> Config.set_flag name value) settings;
          let rendered = Json_out.to_string (Config.snapshot ()) in
          match Json_out.of_string rendered with
          | Error e -> QCheck2.Test.fail_reportf "snapshot does not parse: %s" e
          | Ok json ->
            Json_out.to_string json = rendered
            && (match
                  Option.bind (Json_out.member "digest" json) Json_out.to_string_opt
                with
               | Some d -> d = Config.digest ()
               | None -> false)
            &&
            match Json_out.member "knobs" json with
            | Some (Json_out.List knobs) -> List.length knobs = 10
            | _ -> false))

let () =
  Alcotest.run "config"
    [
      ( "accessors",
        [
          Alcotest.test_case "defaults" `Quick test_defaults;
          Alcotest.test_case "env provenance" `Quick test_env_provenance;
          Alcotest.test_case "flag overrides env" `Quick test_flag_overrides_env;
          Alcotest.test_case "jobs resolution clamps" `Quick test_jobs_resolved_clamps;
        ] );
      ( "validation",
        [
          Alcotest.test_case "malformed values raise" `Quick test_malformed_values;
          Alcotest.test_case "error message" `Quick test_invalid_message;
          Alcotest.test_case "set_flag validates eagerly" `Quick
            test_set_flag_validates_eagerly;
          Alcotest.test_case "errors () sweeps every knob" `Quick test_errors_sweep;
          Alcotest.test_case "unknown MCX_* detection" `Quick test_unknown_vars;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "field order" `Quick test_snapshot_shape;
          Alcotest.test_case "digest stability" `Quick test_digest_stability;
          Alcotest.test_case "semantic projection is job-invariant" `Quick
            test_semantic_projection_job_invariant;
          QCheck_alcotest.to_alcotest prop_snapshot_round_trip;
        ] );
      ( "journal",
        [
          Alcotest.test_case "resume refuses on mismatch" `Quick
            test_resume_refuses_on_digest_mismatch;
          Alcotest.test_case "force-resume overrides" `Quick
            test_force_resume_overrides_mismatch;
          Alcotest.test_case "mismatch printer" `Quick test_mismatch_printer;
        ] );
    ]
